#include "campaign.hh"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "analyze/absint/loopbound.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "kernel/kernel.hh"
#include "sweep/sweep.hh"
#include "trace/trace.hh"
#include "wcet/wcet.hh"

namespace rtu {

namespace {

/** In-memory sink for the overhead-measurement probe runs. */
class VectorTraceSink : public TraceSink
{
  public:
    void beginRun(const TraceRunLabel &) override {}
    void episode(const EpisodeTrace &e) override { episodes_.push_back(e); }

    const std::vector<EpisodeTrace> &episodes() const { return episodes_; }

  private:
    std::vector<EpisodeTrace> episodes_;
};

/** Taskset parameters for the overhead probe: moderate load, same
 *  shape knobs as the campaign so the same kernel paths run. */
TasksetParams
probeParams(const SchedCampaignSpec &spec)
{
    TasksetParams p = spec.taskset;
    p.totalUtil = std::min(0.5, static_cast<double>(p.tasks));
    return p;
}

void
accumulate(const std::vector<EpisodeTrace> &episodes,
           OverheadMeasurement *m)
{
    for (const EpisodeTrace &e : episodes) {
        if (e.preempted)
            continue;  // truncated episode: no complete latency
        const double lat = static_cast<double>(e.latency());
        const double entry = static_cast<double>(e.trapTaken) -
                             static_cast<double>(e.irqAssert);
        m->measEntryMax = std::max(m->measEntryMax, entry);
        if (e.fromTask != e.toTask)
            m->measSwitchMax = std::max(m->measSwitchMax, lat);
        else
            m->measTickMax = std::max(m->measTickMax, lat);
    }
}

double
maxNorm(const RtaResult &rta, const std::vector<RtaTask> &tasks)
{
    double norm = 0.0;
    for (size_t i = 0; i < tasks.size(); ++i) {
        if (tasks[i].deadlineCycles > 0.0)
            norm = std::max(norm, rta.tasks[i].responseCycles /
                                      tasks[i].deadlineCycles);
    }
    return norm;
}

std::vector<RtaTask>
effectiveRtaTasks(const Taskset &ts, const LowerParams &lower,
                  const BusyCalibration &cal)
{
    // The solver bounds the *calibrated* job cost — the same iteration
    // counts the lowered workload will run — never the nominal value.
    std::vector<RtaTask> tasks;
    const double clk = static_cast<double>(lower.timerPeriodCycles);
    for (const SchedTask &t : ts.tasks) {
        RtaTask rt;
        rt.periodCycles = t.periodTicks * clk;
        rt.deadlineCycles = t.deadlineTicks * clk;
        const unsigned iters = busyItersFor(cal, t.util * rt.periodCycles);
        rt.execCycles = effectiveExecCycles(cal, iters);
        tasks.push_back(rt);
    }
    return tasks;
}

} // namespace

OverheadMeasurement
measureOverheads(CoreKind core, const RtosUnitConfig &unit,
                 const SchedCampaignSpec &spec)
{
    OverheadMeasurement m;
    const Word clk = spec.lower.timerPeriodCycles;
    m.busy = calibrateBusy(core, unit, clk);

    // Probe runs with phase tracing: a lowered taskset (the exact
    // kernel flavour the campaign will run, k_delay_until included)
    // plus two standard workloads for path diversity.
    const Taskset probe =
        makeTaskset(tasksetSeed(spec.seed, 0xFFFF, 0), probeParams(spec));
    const auto probeWorkload =
        lowerTaskset(probe, spec.lower, m.busy, "sched_probe");

    VectorTraceSink sink;
    RunOptions opts;
    opts.timerPeriodCycles = clk;
    opts.sink = &sink;
    runWorkload(core, unit, *probeWorkload, opts);
    runWorkload(core, unit, *makeDelayWake(8), opts);
    runWorkload(core, unit, *makePriorityPreempt(8), opts);
    accumulate(sink.episodes(), &m);
    rtu_assert(m.measSwitchMax > 0.0,
               "overhead probe on %s/%s observed no switch episodes",
               coreKindName(core), unit.name().c_str());

    if (core == CoreKind::kCv32e40p) {
        // Static bound on the ISR of the kernel flavour actually run
        // (usesDelayUntil changes the timer path on hw-sched configs).
        KernelParams kp;
        kp.unit = unit;
        kp.timerPeriodCycles = clk;
        kp.usesDelayUntil = true;
        KernelBuilder kb(kp);
        probeWorkload->addTasks(kb);
        const Program program = kb.build();
        WcetAnalyzer analyzer(program, unit);
        // Tighten the walk with abstract-interpretation facts:
        // inferred loop bounds (never looser than the annotations)
        // and statically infeasible branch edges. The tighter ISR
        // WCET directly lowers the RTA switch-cost floor below.
        analyzer.setFacts(deriveAbsintFacts(program));
        m.hasWcet = true;
        m.wcetCycles =
            static_cast<double>(analyzer.analyzeIsr().totalCycles);
    }

    m.rta.tickPeriodCycles = static_cast<double>(clk);
    m.rta.switchCost = spec.margin * m.measSwitchMax;
    if (m.hasWcet)
        m.rta.switchCost =
            std::max(m.rta.switchCost,
                     m.wcetCycles + spec.margin * m.measEntryMax);
    m.rta.tickCost =
        spec.margin *
        (m.measTickMax > 0.0 ? m.measTickMax : m.measSwitchMax);
    return m;
}

SchedCampaignResult
runSchedCampaign(const SchedCampaignSpec &spec)
{
    rtu_assert(!spec.cores.empty() && !spec.configs.empty() &&
                   !spec.utilGrid.empty() && spec.tasksetsPerUtil > 0,
               "sched campaign with an empty axis");

    SchedCampaignResult result;

    // Overheads and calibrations: serial, up front, in grid order —
    // shared read-only by the fan-out below.
    std::vector<OverheadMeasurement> overheads;
    for (CoreKind core : spec.cores)
        for (const RtosUnitConfig &unit : spec.configs)
            overheads.push_back(measureOverheads(core, unit, spec));

    const size_t nUtil = spec.utilGrid.size();
    const size_t nSet = spec.tasksetsPerUtil;
    const size_t perPair = nUtil * nSet;
    const size_t nPoints =
        spec.cores.size() * spec.configs.size() * perPair;
    result.points.resize(nPoints);

    SweepRunner runner(spec.threads);
    runner.forEachIndex(nPoints, [&](std::size_t idx) {
        const size_t pair = idx / perPair;
        const size_t ci = pair / spec.configs.size();
        const size_t ki = pair % spec.configs.size();
        const size_t ui = (idx % perPair) / nSet;
        const size_t ti = idx % nSet;

        const CoreKind core = spec.cores[ci];
        const RtosUnitConfig &unit = spec.configs[ki];
        const OverheadMeasurement &m = overheads[pair];

        SchedPointResult &r = result.points[idx];
        r.core = core;
        r.config = unit.name();
        r.utilIndex = static_cast<unsigned>(ui);
        r.tasksetIndex = static_cast<unsigned>(ti);
        r.util = spec.utilGrid[ui];
        r.tasksetSeed = tasksetSeed(spec.seed, static_cast<unsigned>(ui),
                                    static_cast<unsigned>(ti));

        TasksetParams tparams = spec.taskset;
        tparams.totalUtil = r.util;
        const Taskset ts = makeTaskset(r.tasksetSeed, tparams);

        const std::vector<RtaTask> rtaTasks =
            effectiveRtaTasks(ts, spec.lower, m.busy);
        const RtaResult rta = responseTimeAnalysis(rtaTasks, m.rta);
        r.rtaSchedulable = rta.schedulable;
        r.rtaMaxNorm = maxNorm(rta, rtaTasks);

        if (!spec.simulate) {
            r.status = "rta-only";
            return;
        }
        r.simRan = true;
        const auto workload = lowerTaskset(
            ts, spec.lower, m.busy,
            csprintf("sched_u%zu_s%zu", ui, ti));
        RunOptions opts;
        opts.timerPeriodCycles = spec.lower.timerPeriodCycles;
        std::vector<GuestEvent> events;
        opts.postRun = [&events](Simulation &sim) {
            events = sim.hostIo().events();
        };
        const RunResult rr = runWorkload(core, unit, *workload, opts);
        r.simOk = rr.ok;
        r.status = rr.ok ? runStatusName(rr.status)
                         : (rr.diagnostic.empty()
                                ? runStatusName(rr.status)
                                : rr.diagnostic);
        const DeadlineReport report = checkDeadlines(
            events, ts, spec.lower, horizonTicksFor(ts, spec.lower));
        r.jobsExpected = report.jobsExpected;
        r.jobsDone = report.jobsDone;
        r.misses = report.misses;
        r.simMaxNorm = report.maxNormResponse;
        r.sound = !(r.rtaSchedulable && (!r.simOk || r.misses > 0));
    });

    // Rollups, grid order.
    size_t pair = 0;
    for (CoreKind core : spec.cores) {
        for (const RtosUnitConfig &unit : spec.configs) {
            SchedConfigSummary s;
            s.core = core;
            s.config = unit.name();
            s.overheads = overheads[pair];
            double pessimism = 0.0;
            unsigned pessimismPoints = 0;
            for (size_t i = pair * perPair; i < (pair + 1) * perPair;
                 ++i) {
                const SchedPointResult &r = result.points[i];
                ++s.points;
                if (r.rtaSchedulable)
                    ++s.rtaSchedulable;
                if (r.simRan && r.simOk && r.misses == 0)
                    ++s.simSchedulable;
                if (!r.sound)
                    ++s.violations;
                if (r.rtaSchedulable && r.simRan && r.simOk &&
                    r.misses == 0 && r.simMaxNorm > 0.0) {
                    pessimism += r.rtaMaxNorm / r.simMaxNorm;
                    ++pessimismPoints;
                }
            }
            if (pessimismPoints)
                s.meanPessimism = pessimism / pessimismPoints;
            result.soundnessViolations += s.violations;
            result.summaries.push_back(s);
            ++pair;
        }
    }
    return result;
}

void
writeSchedJsonl(std::ostream &os, const SchedCampaignSpec &spec,
                const SchedCampaignResult &result)
{
    os << "{\"schema\":" << kSchedSchemaVersion
       << ",\"bench\":\"sched\",\"seed\":" << spec.seed << ",\"cores\":[";
    for (size_t i = 0; i < spec.cores.size(); ++i)
        os << (i ? "," : "") << '"'
           << jsonEscape(coreKindName(spec.cores[i])) << '"';
    os << "],\"configs\":[";
    for (size_t i = 0; i < spec.configs.size(); ++i)
        os << (i ? "," : "") << '"' << jsonEscape(spec.configs[i].name())
           << '"';
    os << "],\"util_grid\":[";
    for (size_t i = 0; i < spec.utilGrid.size(); ++i)
        os << (i ? "," : "") << jsonNumber(spec.utilGrid[i], "%.4f");
    os << "],\"tasksets_per_util\":" << spec.tasksetsPerUtil
       << ",\"tasks\":" << spec.taskset.tasks
       << ",\"period_min_ticks\":" << spec.taskset.periodMinTicks
       << ",\"period_max_ticks\":" << spec.taskset.periodMaxTicks
       << ",\"phase_ticks\":" << spec.lower.phaseTicks
       << ",\"horizon_ticks\":" << spec.lower.horizonTicks
       << ",\"timer_period\":" << spec.lower.timerPeriodCycles
       << ",\"margin\":" << jsonNumber(spec.margin, "%.4f")
       << ",\"simulate\":" << (spec.simulate ? "true" : "false")
       << ",\"overheads\":[";
    for (size_t i = 0; i < result.summaries.size(); ++i) {
        const SchedConfigSummary &s = result.summaries[i];
        const OverheadMeasurement &m = s.overheads;
        os << (i ? "," : "") << "{\"core\":\""
           << jsonEscape(coreKindName(s.core)) << "\",\"config\":\""
           << jsonEscape(s.config) << "\",\"switch_cost\":"
           << jsonNumber(m.rta.switchCost, "%.3f") << ",\"tick_cost\":"
           << jsonNumber(m.rta.tickCost, "%.3f")
           << ",\"meas_switch_max\":"
           << jsonNumber(m.measSwitchMax, "%.1f") << ",\"meas_tick_max\":"
           << jsonNumber(m.measTickMax, "%.1f") << ",\"meas_entry_max\":"
           << jsonNumber(m.measEntryMax, "%.1f") << ",\"has_wcet\":"
           << (m.hasWcet ? "true" : "false") << ",\"wcet\":"
           << jsonNumber(m.wcetCycles, "%.1f") << ",\"cycles_per_iter\":"
           << jsonNumber(m.busy.cyclesPerIter, "%.4f")
           << ",\"per_job_overhead\":"
           << jsonNumber(m.busy.perJobOverheadCycles, "%.3f") << "}";
    }
    os << "]}\n";

    for (const SchedPointResult &r : result.points) {
        os << "{\"core\":\"" << jsonEscape(coreKindName(r.core))
           << "\",\"config\":\"" << jsonEscape(r.config)
           << "\",\"util_index\":" << r.utilIndex
           << ",\"taskset_index\":" << r.tasksetIndex << ",\"util\":"
           << jsonNumber(r.util, "%.4f") << ",\"taskset_seed\":"
           << r.tasksetSeed << ",\"rta_schedulable\":"
           << (r.rtaSchedulable ? "true" : "false") << ",\"rta_max_norm\":"
           << jsonNumber(r.rtaMaxNorm, "%.4f") << ",\"sim_ran\":"
           << (r.simRan ? "true" : "false") << ",\"sim_ok\":"
           << (r.simOk ? "true" : "false") << ",\"jobs_expected\":"
           << r.jobsExpected << ",\"jobs_done\":" << r.jobsDone
           << ",\"misses\":" << r.misses << ",\"sim_max_norm\":"
           << jsonNumber(r.simMaxNorm, "%.4f") << ",\"sound\":"
           << (r.sound ? "true" : "false") << ",\"status\":\""
           << jsonEscape(r.status) << "\"}\n";
    }
}

} // namespace rtu
