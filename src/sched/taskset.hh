/**
 * @file
 * Deterministic synthetic periodic-taskset generator for the
 * schedulability co-analysis subsystem.
 *
 * Utilizations come from UUniFast-Discard (unbiased over the
 * admissible simplex, per-task util capped at 1), periods are
 * log-uniform over [periodMinTicks, periodMaxTicks] in timer ticks,
 * deadlines are implicit (D = T), and priorities are rate-monotonic
 * (shortest period gets the numerically highest kernel priority —
 * the kernel schedules higher numbers first). All randomness flows
 * through the shared SplitMix64, seeded per taskset from (campaign
 * seed, util index, taskset index) and never from the configuration
 * under test — the *same* taskset is compared across designs, and a
 * campaign is byte-reproducible at any thread count.
 */

#ifndef RTU_SCHED_TASKSET_HH
#define RTU_SCHED_TASKSET_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace rtu {

/** One synthetic periodic task (time unit: timer ticks). */
struct SchedTask
{
    double util = 0.0;           ///< fraction of one core
    unsigned periodTicks = 0;
    unsigned deadlineTicks = 0;  ///< implicit deadline: D = T
    unsigned priority = 1;       ///< kernel priority 1..7, higher wins
};

/** A taskset, sorted highest priority first (RTA convention). */
struct Taskset
{
    std::vector<SchedTask> tasks;

    double totalUtil() const;
};

/** Generator knobs (tasks <= 7: kernel priorities 1..7 are distinct). */
struct TasksetParams
{
    unsigned tasks = 4;
    double totalUtil = 0.6;
    unsigned periodMinTicks = 10;
    unsigned periodMaxTicks = 100;
};

/**
 * UUniFast-Discard: @p n utilizations summing to @p total, each in
 * (0, 1]. Vectors with any element above 1 are discarded and redrawn
 * (only possible when total > 1), keeping the distribution uniform
 * over the admissible region.
 */
std::vector<double> uunifastDiscard(SplitMix64 &rng, unsigned n,
                                    double total);

/** Per-taskset seed: mixes campaign seed with the grid coordinates. */
std::uint64_t tasksetSeed(std::uint64_t campaign_seed, unsigned util_index,
                          unsigned taskset_index);

/** Generate one taskset. Deterministic in (seed, params). */
Taskset makeTaskset(std::uint64_t seed, const TasksetParams &params);

} // namespace rtu

#endif // RTU_SCHED_TASKSET_HH
