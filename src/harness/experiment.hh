/**
 * @file
 * Experiment driver: run (core × configuration × workload) matrices,
 * collect context-switch latency distributions and activity counters
 * (consumed by the latency benches and the power model).
 */

#ifndef RTU_HARNESS_EXPERIMENT_HH
#define RTU_HARNESS_EXPERIMENT_HH

#include <functional>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "rtosunit/config.hh"
#include "simulation.hh"
#include "workloads/workloads.hh"

namespace rtu {

/** Switching-activity counters feeding the dynamic-power model. */
struct ActivityCounters
{
    std::uint64_t cycles = 0;
    std::uint64_t instret = 0;
    std::uint64_t memOps = 0;
    std::uint64_t unitMemWords = 0;  ///< FSM reads + writes
    std::uint64_t sortPhases = 0;
    std::uint64_t unitBusyCycles = 0;
    std::uint64_t traps = 0;
};

/** Simulator throughput for one run (wall time is nondeterministic;
 *  everything else is exact). */
struct RunThroughput
{
    std::uint64_t cyclesTicked = 0;
    std::uint64_t cyclesSkipped = 0;
    std::uint64_t fastForwards = 0;
    std::uint64_t strideSkips = 0;
    std::uint64_t blockRuns = 0;
    std::uint64_t cyclesBlockExecuted = 0;
    double wallSeconds = 0.0;
};

struct RunResult
{
    CoreKind core;
    RtosUnitConfig unit;
    std::string workload;
    bool ok = false;
    Word exitCode = 0;
    Cycle cycles = 0;
    RunStatus status = RunStatus::kExited;
    std::string diagnostic;  ///< non-empty on a watchdog abort
    SampleStats switchLatency;   ///< task-switching episodes only
    SampleStats episodeLatency;  ///< every ISR episode
    CoreStats coreStats;
    ActivityCounters activity;
    RunThroughput throughput;
};

/** Knobs of a single run beyond (core, configuration, workload). */
struct RunOptions
{
    Word timerPeriodCycles = 1000;
    /** NaxRiscv LSU ctxQueue depth (paper Fig 8; ablation knob). */
    unsigned naxCtxQueueEntries = 8;
    /** Optional per-episode trace destination (phase timestamps). The
     *  run is bracketed with beginRun()/endRun() on the sink. */
    TraceSink *sink = nullptr;
    /** Deterministic seed recorded in trace labels (reserved for
     *  future stochastic workloads; the simulator itself is exact). */
    std::uint64_t seed = 0;
    /** Event-driven fast-forward; false = per-cycle reference mode. */
    bool fastForward = true;
    /** Decode-once text image (bit-exact perf knob; see SimConfig). */
    bool predecode = true;
    /** Superblock execution (bit-exact perf knob; see SimConfig). */
    bool blockExec = true;
    /** No-retire watchdog threshold; 0 disables. */
    std::uint64_t watchdogCycles = 2'000'000;
    /**
     * Replace the workload's external-interrupt schedule (the
     * fault-injection campaign's dropped/spurious/coalesced IRQ
     * models). nullptr keeps the workload's own schedule.
     */
    const std::vector<Cycle> *extIrqOverride = nullptr;
    /** Called on the constructed Simulation before run() — attach
     *  oracles, plant canaries, register injector components. */
    std::function<void(Simulation &)> preRun;
    /** Called after run(), before the result is assembled — final
     *  oracle sweep over the end state. */
    std::function<void(Simulation &)> postRun;
};

/** Run one workload on one (core, configuration) pair. */
RunResult runWorkload(CoreKind core, const RtosUnitConfig &unit,
                      const Workload &workload, const RunOptions &opts);

RunResult runWorkload(CoreKind core, const RtosUnitConfig &unit,
                      const Workload &workload,
                      Word timer_period_cycles = 1000);

/** Run the full standard suite; one result per workload. */
std::vector<RunResult> runSuite(CoreKind core, const RtosUnitConfig &unit,
                                unsigned iterations,
                                Word timer_period_cycles = 1000);

/** Merge the switching-latency samples of several runs. */
SampleStats mergeSwitchLatencies(const std::vector<RunResult> &runs);

} // namespace rtu

#endif // RTU_HARNESS_EXPERIMENT_HH
