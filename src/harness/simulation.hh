/**
 * @file
 * Full-system simulation: one RISC-V core model + RTOSUnit (or CV32RT
 * baseline, or nothing) + SRAM + CLINT + host I/O, running a generated
 * kernel image. This is the library's main entry point.
 */

#ifndef RTU_HARNESS_SIMULATION_HH
#define RTU_HARNESS_SIMULATION_HH

#include <memory>
#include <string>

#include "asm/program.hh"
#include "common/types.hh"
#include "cores/core.hh"
#include "cores/executor.hh"
#include "rtosunit/config.hh"
#include "rtosunit/cv32rt.hh"
#include "rtosunit/rtosunit.hh"
#include "sim/blockexec.hh"
#include "sim/clint.hh"
#include "sim/hostio.hh"
#include "sim/irq.hh"
#include "sim/kernel.hh"
#include "sim/mem.hh"
#include "sim/predecode.hh"
#include "sim/switchrec.hh"
#include "trace/trace.hh"

namespace rtu {

/** The three paper cores (Section 3). */
enum class CoreKind { kCv32e40p, kCva6, kNax };

const char *coreKindName(CoreKind kind);

struct SimConfig
{
    CoreKind core = CoreKind::kCv32e40p;
    RtosUnitConfig unit;
    Word timerPeriodCycles = 1000;  ///< must match the kernel image
    std::uint64_t maxCycles = 20'000'000;
    /** NaxRiscv LSU ctxQueue depth (paper Fig 8; ablation knob). */
    unsigned naxCtxQueueEntries = 8;
    /** Event-driven fast-forward; false = per-cycle reference mode. */
    bool fastForward = true;
    /** Decode the text segment once at install and fetch from the
     *  predecoded image; false = decode from memory every fetch.
     *  Behavior is bit-exact either way — this only moves decode work
     *  out of the per-cycle path. */
    bool predecode = true;
    /** Superblock execution: partition the predecoded text into
     *  straight-line blocks and let the cores execute whole blocks per
     *  event-horizon check. Behavior is bit-exact either way — only
     *  the per-instruction dispatch overhead moves. Requires (and is
     *  ignored without) predecode + fastForward. */
    bool blockExec = true;
    /** Abort after this many cycles without a retired instruction or
     *  trap (hung-guest diagnostic); 0 disables the watchdog. */
    std::uint64_t watchdogCycles = 2'000'000;
};

/** How a simulation run ended. */
enum class RunStatus
{
    kExited,      ///< guest exited voluntarily
    kCycleLimit,  ///< ran to maxCycles
    kNoRetire,    ///< watchdog: no instruction retired, guest hung
    kGuestFault,  ///< architecturally fatal act (illegal insn, bus error)
};

const char *runStatusName(RunStatus status);

/**
 * Secondary observer of trap/mret boundaries, with the guest task ids
 * already resolved. The fault-injection campaign hangs its oracles and
 * episode-triggered injectors here; the primary SwitchRecorder path is
 * unaffected whether or not an observer is attached.
 */
class RunObserver
{
  public:
    virtual ~RunObserver() = default;
    virtual void trapTaken(Word cause, Cycle entry_cycle,
                           Word from_task) = 0;
    virtual void mretCompleted(Cycle cycle, Word to_task) = 0;
};

class Simulation : public CoreListener, public PhaseObserver
{
  public:
    Simulation(const SimConfig &config, const Program &program);
    ~Simulation() override;

    /** Assert the external interrupt line at @p cycle. */
    void scheduleExtIrq(Cycle at);

    /**
     * Stream completed switch episodes (with phase timestamps) into
     * @p sink. The caller brackets the run with beginRun()/endRun()
     * on the sink; episodes are emitted in simulation order.
     */
    void setTraceSink(TraceSink *sink) { recorder_.setSink(sink); }

    /** Attach a trap/mret observer (fault-injection oracles). */
    void setRunObserver(RunObserver *observer) { observer_ = observer; }

    /**
     * Register an extra clocked component (e.g. a fault injector)
     * behind the built-in ones. Must happen before run(); the
     * component ticks last each cycle and participates in the
     * fast-forward quiescence protocol like any other.
     */
    void addClocked(Clocked *component) { kernel_.add(component); }

    /**
     * Run to guest exit, the cycle limit, or a watchdog abort.
     * @return true if the guest exited voluntarily.
     */
    bool run();

    Cycle now() const { return kernel_.now(); }
    bool exited() const { return hostio_.exited(); }
    Word exitCode() const { return hostio_.exitCode(); }

    /** Outcome of the last run() (kExited before any run). */
    RunStatus status() const { return status_; }
    /** Hang diagnostic (last PC, pending irqs, unit FSM state); empty
     *  unless status() == kNoRetire. */
    const std::string &statusDiagnostic() const { return diagnostic_; }
    /** Scheduling-kernel throughput counters. */
    const SimKernelStats &kernelStats() const { return kernel_.stats(); }

    HostIo &hostIo() { return hostio_; }
    SwitchRecorder &recorder() { return recorder_; }
    Core &core() { return *core_; }

    /** Core counters plus the simulation-owned front-end counters
     *  (text invalidations live in the shared predecoded image). */
    CoreStats
    coreStats() const
    {
        CoreStats s = core_->stats();
        s.textInvalidations = predecode_.invalidations();
        s.blockInvalidations = blockindex_.invalidations();
        return s;
    }
    RtosUnit *unit() { return unit_.get(); }
    Cv32rtUnit *cv32rtUnit() { return cv32rt_.get(); }
    ArchState &archState() { return state_; }
    MemSystem &mem() { return mem_; }

    /** Read a data word by program symbol (test/verification aid). */
    Word readSymbolWord(const std::string &symbol);

    /** Address of a program symbol (oracles walk guest structures). */
    Addr symbolAddr(const std::string &symbol) const;

    /** Like symbolAddr() but returns 0 when the symbol is absent
     *  (task-count probing: k_stack_<i> exists per created task). */
    Addr findSymbolAddr(const std::string &symbol) const;

    /** The guest task id the kernel believes is current. */
    Word currentGuestTask();

  private:
    /** Per-cycle SharedPort resets folded into one kernel component
     *  (they used to be two unconditional calls in the run loop). */
    class PortReset : public Clocked
    {
      public:
        PortReset(SharedPort &a, SharedPort &b) : a_(a), b_(b) {}

        void
        tick(Cycle now) override
        {
            (void)now;
            a_.beginCycle();
            b_.beginCycle();
        }

        /** Resetting claim flags nobody reads during a skip is dead
         *  work; the first tick after the skip re-runs it anyway. */
        Cycle
        nextEventAt(Cycle now) const override
        {
            (void)now;
            return kNoEvent;
        }

      private:
        SharedPort &a_;
        SharedPort &b_;
    };

    void trapTaken(Word cause, Cycle entry_cycle) override;
    void mretCompleted(Cycle cycle) override;
    void phaseReached(SwitchPhase phase, Cycle cycle) override;

    /** Retired-work counter driving the no-retire watchdog. */
    std::uint64_t progressCount() const;
    void noRetireAbort();

    SimConfig config_;
    const Program &program_;

    IrqLines irq_;
    ExtIrqDriver ext_;
    Sram imem_;
    Sram dmem_;
    Clint clint_;
    HostIo hostio_;
    MemSystem mem_;
    ArchState state_;
    Executor exec_;
    PredecodedImage predecode_;
    BlockIndex blockindex_;
    SharedPort dmemPort_;
    SharedPort busPort_;
    PortReset portReset_;
    SimKernel kernel_;

    std::unique_ptr<UnitMemPort> unitPort_;
    std::unique_ptr<RtosUnit> unit_;
    std::unique_ptr<Cv32rtUnit> cv32rt_;
    std::unique_ptr<Core> core_;

    SwitchRecorder recorder_;
    RunObserver *observer_ = nullptr;
    RunStatus status_ = RunStatus::kExited;
    std::string diagnostic_;
    Addr taskIdAddr_ = 0;
};

} // namespace rtu

#endif // RTU_HARNESS_SIMULATION_HH
