#include "simulation.hh"

#include "common/logging.hh"
#include "cores/cv32e40p.hh"
#include "cores/cva6.hh"
#include "cores/nax.hh"
#include "sim/memmap.hh"

namespace rtu {

const char *
coreKindName(CoreKind kind)
{
    switch (kind) {
      case CoreKind::kCv32e40p: return "CV32E40P";
      case CoreKind::kCva6: return "CVA6";
      case CoreKind::kNax: return "NaxRiscv";
    }
    return "?";
}

const char *
runStatusName(RunStatus status)
{
    switch (status) {
      case RunStatus::kExited: return "exited";
      case RunStatus::kCycleLimit: return "cycle-limit";
      case RunStatus::kNoRetire: return "no-retire";
      case RunStatus::kGuestFault: return "guest-fault";
    }
    return "?";
}

Simulation::Simulation(const SimConfig &config, const Program &program)
    : config_(config), program_(program), ext_(irq_),
      imem_("imem", memmap::kImemBase, memmap::kImemSize),
      dmem_("dmem", memmap::kDmemBase, memmap::kDmemSize),
      clint_(irq_), hostio_(irq_, ext_),
      exec_(state_, mem_, irq_),
      dmemPort_("dmem-port"), busPort_("bus-port"),
      portReset_(dmemPort_, busPort_)
{
    std::string why;
    if (!config_.unit.validate(&why))
        fatal("invalid simulation unit config: %s", why.c_str());

    mem_.addDevice(&imem_);
    mem_.addDevice(&dmem_);
    mem_.addDevice(&clint_);
    mem_.addDevice(&hostio_);

    imem_.loadWords(program.textBase, program.text);
    dmem_.loadWords(program.dataBase, program.data);
    taskIdAddr_ = program.symbol("currentTaskId");

    // Decode the whole text segment once; per-cycle fetch becomes an
    // array index. Stores and injected faults landing in text re-decode
    // the touched words through the write observer.
    if (config_.predecode && !program.text.empty())
        predecode_.install(mem_, program.textBase, program.text.size());

    // Superblock index on top of the image: straight-line run lengths
    // and worst-case block costs, kept coherent with text writes via
    // the image's invalidation listener. Without fast-forward there is
    // no event horizon to execute blocks against, so skip it.
    if (config_.blockExec && config_.fastForward && predecode_.installed())
        blockindex_.install(predecode_, Cv32e40pCostParams{});

    state_.setPc(program.textBase);
    exec_.setClock(kernel_.clockPtr());
    hostio_.bindClock(kernel_.clockPtr());

    // The core must exist before the unit: on NaxRiscv the unit's
    // memory port is the LSU ctxQueue inside the core (paper Fig 8).
    Core::Env env;
    env.state = &state_;
    env.exec = &exec_;
    env.mem = &mem_;
    env.irq = &irq_;
    env.dmemPort = &dmemPort_;
    env.clint = &clint_;
    if (predecode_.installed())
        env.predecode = &predecode_;
    if (blockindex_.installed())
        env.blockindex = &blockindex_;

    NaxCore *nax = nullptr;
    switch (config_.core) {
      case CoreKind::kCv32e40p:
        core_ = std::make_unique<Cv32e40pCore>(env);
        break;
      case CoreKind::kCva6:
        core_ = std::make_unique<Cva6Core>(env, busPort_);
        break;
      case CoreKind::kNax: {
        NaxParams np;
        np.ctxQueueEntries = config_.naxCtxQueueEntries;
        auto c = std::make_unique<NaxCore>(env, np);
        nax = c.get();
        core_ = std::move(c);
        break;
      }
    }
    core_->setListener(this);

    // Instantiate the hardware unit matching the configuration.
    if (config_.unit.cv32rt) {
        // CV32RT uses a dedicated memory port; on NaxRiscv it bypasses
        // the write-back cache and invalidates the drained lines.
        unitPort_ = std::make_unique<DedicatedUnitPort>(mem_);
        UnitCacheHook *hook = nax ? &nax->dcache() : nullptr;
        cv32rt_ = std::make_unique<Cv32rtUnit>(state_, *unitPort_, hook);
        exec_.setUnit(cv32rt_.get());
    } else if (config_.unit.anyHardware()) {
        // RTOSUnit arbitration point per core (paper Section 5):
        // CV32E40P at the LSU/DMEM port, CVA6 at the bus, NaxRiscv
        // inside the LSU via the ctxQueue.
        UnitMemPort *port = nullptr;
        switch (config_.core) {
          case CoreKind::kCv32e40p:
            unitPort_ = std::make_unique<DirectUnitPort>(dmemPort_, mem_);
            port = unitPort_.get();
            break;
          case CoreKind::kCva6:
            unitPort_ = std::make_unique<DirectUnitPort>(busPort_, mem_);
            port = unitPort_.get();
            break;
          case CoreKind::kNax:
            port = &nax->ctxQueuePort();
            break;
        }
        unit_ = std::make_unique<RtosUnit>(config_.unit, state_, *port);
        exec_.setUnit(unit_.get());
        if (config_.unit.sched)
            clint_.enableAutoReset(config_.timerPeriodCycles);
    }

    // Phase tracing: the units stamp store/sched/load completion into
    // the recorder's in-flight episode through this simulation.
    if (unit_)
        unit_->setPhaseObserver(this, kernel_.clockPtr());
    if (cv32rt_)
        cv32rt_->setPhaseObserver(this);

    // Registration order is the intra-cycle tick order and must match
    // the historical hand-written loop: devices first, then the core,
    // then the unit (which consumes what the core pushed this cycle).
    kernel_.add(&clint_);
    kernel_.add(&ext_);
    kernel_.add(&portReset_);
    kernel_.add(core_.get());
    if (unit_)
        kernel_.add(unit_.get());
    else if (cv32rt_)
        kernel_.add(cv32rt_.get());
}

Simulation::~Simulation() = default;

void
Simulation::scheduleExtIrq(Cycle at)
{
    ext_.schedule(at);
}

Word
Simulation::currentGuestTask()
{
    return mem_.read32(taskIdAddr_);
}

void
Simulation::trapTaken(Word cause, Cycle entry_cycle)
{
    const Word from = currentGuestTask();
    recorder_.beginEpisode(cause, irq_.assertCycle(cause), entry_cycle,
                           from);
    if (observer_)
        observer_->trapTaken(cause, entry_cycle, from);
}

void
Simulation::mretCompleted(Cycle cycle)
{
    const Word to = currentGuestTask();
    recorder_.endEpisode(cycle, to);
    if (observer_)
        observer_->mretCompleted(cycle, to);
}

void
Simulation::phaseReached(SwitchPhase phase, Cycle cycle)
{
    recorder_.notePhase(phase, cycle);
}

std::uint64_t
Simulation::progressCount() const
{
    const CoreStats &s = core_->stats();
    return s.instret + s.traps;
}

void
Simulation::noRetireAbort()
{
    status_ = RunStatus::kNoRetire;
    std::string unitState = "none";
    if (unit_)
        unitState = unit_->fsmState();
    else if (cv32rt_)
        unitState = csprintf("cv32rt drainBusy=%d",
                             cv32rt_->drainBusy());
    diagnostic_ = csprintf(
        "no instruction retired for %llu cycles at cycle %llu: "
        "pc=0x%08x pending-irqs=0x%x mie=0x%x mstatus=0x%x unit[%s]",
        static_cast<unsigned long long>(config_.watchdogCycles),
        static_cast<unsigned long long>(kernel_.now()), state_.pc(),
        irq_.pending(), state_.csrs.mie, state_.csrs.mstatus,
        unitState.c_str());
}

bool
Simulation::run()
{
    status_ = RunStatus::kCycleLimit;
    diagnostic_.clear();
    std::uint64_t lastProgress = progressCount();
    Cycle lastProgressCycle = kernel_.now();

    while (!hostio_.exited()) {
        const Cycle now = kernel_.now();
        if (now >= config_.maxCycles)
            break;

        // Track progress at loop top so ticked and fast-forwarded runs
        // observe retirement at identical cycles.
        const std::uint64_t progress = progressCount();
        if (progress != lastProgress) {
            lastProgress = progress;
            lastProgressCycle = now;
        }

        Cycle limit = config_.maxCycles;
        if (config_.watchdogCycles != 0) {
            const Cycle deadline =
                lastProgressCycle + config_.watchdogCycles;
            if (now >= deadline) {
                noRetireAbort();
                return false;
            }
            limit = std::min(limit, deadline);
        }

        // Clamping skips to `limit` keeps the abort cycle identical in
        // fast-forward and reference mode. A GuestFault here is the
        // guest crashing (expected under fault injection), not a
        // simulator bug: end the run instead of aborting the host.
        try {
            if (config_.fastForward && kernel_.fastForward(limit))
                continue;
            kernel_.tickOne();
        } catch (const GuestFault &gf) {
            status_ = RunStatus::kGuestFault;
            diagnostic_ = gf.what();
            return false;
        }
    }

    if (hostio_.exited())
        status_ = RunStatus::kExited;
    return hostio_.exited();
}

Word
Simulation::readSymbolWord(const std::string &symbol)
{
    return mem_.read32(program_.symbol(symbol));
}

Addr
Simulation::symbolAddr(const std::string &symbol) const
{
    return program_.symbol(symbol);
}

Addr
Simulation::findSymbolAddr(const std::string &symbol) const
{
    const auto it = program_.symbols.find(symbol);
    return it == program_.symbols.end() ? 0 : it->second;
}

} // namespace rtu
