#include "simulation.hh"

#include "common/logging.hh"
#include "cores/cv32e40p.hh"
#include "cores/cva6.hh"
#include "cores/nax.hh"
#include "sim/memmap.hh"

namespace rtu {

const char *
coreKindName(CoreKind kind)
{
    switch (kind) {
      case CoreKind::kCv32e40p: return "CV32E40P";
      case CoreKind::kCva6: return "CVA6";
      case CoreKind::kNax: return "NaxRiscv";
    }
    return "?";
}

Simulation::Simulation(const SimConfig &config, const Program &program)
    : config_(config), program_(program),
      imem_("imem", memmap::kImemBase, memmap::kImemSize),
      dmem_("dmem", memmap::kDmemBase, memmap::kDmemSize),
      clint_(irq_), hostio_(irq_, ext_),
      exec_(state_, mem_, irq_),
      dmemPort_("dmem-port"), busPort_("bus-port")
{
    std::string why;
    if (!config_.unit.validate(&why))
        fatal("invalid simulation unit config: %s", why.c_str());

    mem_.addDevice(&imem_);
    mem_.addDevice(&dmem_);
    mem_.addDevice(&clint_);
    mem_.addDevice(&hostio_);

    imem_.loadWords(program.textBase, program.text);
    dmem_.loadWords(program.dataBase, program.data);
    taskIdAddr_ = program.symbol("currentTaskId");

    state_.setPc(program.textBase);
    exec_.setClock(&now_);

    // The core must exist before the unit: on NaxRiscv the unit's
    // memory port is the LSU ctxQueue inside the core (paper Fig 8).
    Core::Env env;
    env.state = &state_;
    env.exec = &exec_;
    env.mem = &mem_;
    env.irq = &irq_;
    env.dmemPort = &dmemPort_;
    env.clint = &clint_;

    NaxCore *nax = nullptr;
    switch (config_.core) {
      case CoreKind::kCv32e40p:
        core_ = std::make_unique<Cv32e40pCore>(env);
        break;
      case CoreKind::kCva6:
        core_ = std::make_unique<Cva6Core>(env, busPort_);
        break;
      case CoreKind::kNax: {
        NaxParams np;
        np.ctxQueueEntries = config_.naxCtxQueueEntries;
        auto c = std::make_unique<NaxCore>(env, np);
        nax = c.get();
        core_ = std::move(c);
        break;
      }
    }
    core_->setListener(this);

    // Instantiate the hardware unit matching the configuration.
    if (config_.unit.cv32rt) {
        // CV32RT uses a dedicated memory port; on NaxRiscv it bypasses
        // the write-back cache and invalidates the drained lines.
        unitPort_ = std::make_unique<DedicatedUnitPort>(mem_);
        UnitCacheHook *hook = nax ? &nax->dcache() : nullptr;
        cv32rt_ = std::make_unique<Cv32rtUnit>(state_, *unitPort_, hook);
        exec_.setUnit(cv32rt_.get());
    } else if (config_.unit.anyHardware()) {
        // RTOSUnit arbitration point per core (paper Section 5):
        // CV32E40P at the LSU/DMEM port, CVA6 at the bus, NaxRiscv
        // inside the LSU via the ctxQueue.
        UnitMemPort *port = nullptr;
        switch (config_.core) {
          case CoreKind::kCv32e40p:
            unitPort_ = std::make_unique<DirectUnitPort>(dmemPort_, mem_);
            port = unitPort_.get();
            break;
          case CoreKind::kCva6:
            unitPort_ = std::make_unique<DirectUnitPort>(busPort_, mem_);
            port = unitPort_.get();
            break;
          case CoreKind::kNax:
            port = &nax->ctxQueuePort();
            break;
        }
        unit_ = std::make_unique<RtosUnit>(config_.unit, state_, *port);
        exec_.setUnit(unit_.get());
        if (config_.unit.sched)
            clint_.enableAutoReset(config_.timerPeriodCycles);
    }

    // Phase tracing: the units stamp store/sched/load completion into
    // the recorder's in-flight episode through this simulation.
    if (unit_)
        unit_->setPhaseObserver(this, &now_);
    if (cv32rt_)
        cv32rt_->setPhaseObserver(this);
}

Simulation::~Simulation() = default;

void
Simulation::scheduleExtIrq(Cycle at)
{
    ext_.schedule(at);
}

Word
Simulation::currentGuestTask()
{
    return mem_.read32(taskIdAddr_);
}

void
Simulation::trapTaken(Word cause, Cycle entry_cycle)
{
    recorder_.beginEpisode(cause, irq_.assertCycle(cause), entry_cycle,
                           currentGuestTask());
}

void
Simulation::mretCompleted(Cycle cycle)
{
    recorder_.endEpisode(cycle, currentGuestTask());
}

void
Simulation::phaseReached(SwitchPhase phase, Cycle cycle)
{
    recorder_.notePhase(phase, cycle);
}

bool
Simulation::run()
{
    while (now_ < config_.maxCycles && !hostio_.exited()) {
        clint_.tick(now_);
        ext_.tick(now_, irq_);
        hostio_.setCycle(now_);
        dmemPort_.beginCycle();
        busPort_.beginCycle();
        core_->tick(now_);
        if (unit_)
            unit_->tick(now_);
        else if (cv32rt_)
            cv32rt_->tick(now_);
        ++now_;
    }
    if (!hostio_.exited())
        warn("simulation hit the %llu-cycle limit without guest exit",
             static_cast<unsigned long long>(config_.maxCycles));
    return hostio_.exited();
}

Word
Simulation::readSymbolWord(const std::string &symbol)
{
    return mem_.read32(program_.symbol(symbol));
}

} // namespace rtu
