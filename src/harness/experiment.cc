#include "experiment.hh"

#include <chrono>

#include "common/logging.hh"
#include "kernel/kernel.hh"

namespace rtu {

RunResult
runWorkload(CoreKind core, const RtosUnitConfig &unit,
            const Workload &workload, const RunOptions &opts)
{
    const WorkloadInfo winfo = workload.info();

    KernelParams kparams;
    kparams.unit = unit;
    kparams.timerPeriodCycles = opts.timerPeriodCycles;
    kparams.usesExternalIrq = winfo.usesExternalIrq;
    kparams.usesDelayUntil = winfo.usesDelayUntil;

    KernelBuilder kb(kparams);
    workload.addTasks(kb);
    const Program program = kb.build();

    SimConfig sconfig;
    sconfig.core = core;
    sconfig.unit = unit;
    sconfig.timerPeriodCycles = opts.timerPeriodCycles;
    sconfig.maxCycles = winfo.maxCycles;
    sconfig.naxCtxQueueEntries = opts.naxCtxQueueEntries;
    sconfig.fastForward = opts.fastForward;
    sconfig.predecode = opts.predecode;
    sconfig.blockExec = opts.blockExec;
    sconfig.watchdogCycles = opts.watchdogCycles;

    Simulation sim(sconfig, program);
    const std::vector<Cycle> &extSchedule =
        opts.extIrqOverride ? *opts.extIrqOverride : winfo.extIrqSchedule;
    for (Cycle at : extSchedule)
        sim.scheduleExtIrq(at);

    if (opts.preRun)
        opts.preRun(sim);

    if (opts.sink) {
        TraceRunLabel label;
        label.core = coreKindName(core);
        label.config = unit.name();
        label.workload = winfo.name;
        label.seed = opts.seed;
        opts.sink->beginRun(label);
        sim.setTraceSink(opts.sink);
    }

    const auto wallStart = std::chrono::steady_clock::now();
    const bool exited = sim.run();
    const auto wallEnd = std::chrono::steady_clock::now();
    if (opts.postRun)
        opts.postRun(sim);
    if (opts.sink)
        opts.sink->endRun();

    RunResult res;
    res.core = core;
    res.unit = unit;
    res.workload = winfo.name;
    res.ok = exited && sim.exitCode() == 0;
    res.exitCode = sim.exitCode();
    res.cycles = sim.now();
    res.status = sim.status();
    res.diagnostic = sim.statusDiagnostic();
    const SimKernelStats &ks = sim.kernelStats();
    res.throughput.cyclesTicked = ks.cyclesTicked;
    res.throughput.cyclesSkipped = ks.cyclesSkipped;
    res.throughput.fastForwards = ks.fastForwards;
    res.throughput.strideSkips = ks.strideSkips;
    res.throughput.blockRuns = ks.blockRuns;
    res.throughput.cyclesBlockExecuted = ks.cyclesBlockExecuted;
    res.throughput.wallSeconds =
        std::chrono::duration<double>(wallEnd - wallStart).count();
    res.switchLatency = sim.recorder().latencyStats(true);
    res.episodeLatency = sim.recorder().latencyStats(false);
    res.coreStats = sim.coreStats();

    res.activity.cycles = sim.now();
    res.activity.instret = res.coreStats.instret;
    res.activity.memOps = res.coreStats.memOps;
    res.activity.traps = res.coreStats.traps;
    if (RtosUnit *u = sim.unit()) {
        const RtosUnitStats &us = u->stats();
        res.activity.unitMemWords = us.storeWords + us.restoreWords +
                                    kCtxWords * us.preloadFetches;
        res.activity.sortPhases = u->readyList().stats().sortPhases +
                                  u->delayList().stats().sortPhases;
        res.activity.unitBusyCycles = us.busyCycles;
    } else if (Cv32rtUnit *c = sim.cv32rtUnit()) {
        res.activity.unitMemWords = c->stats().drainedWords;
        res.activity.unitBusyCycles = c->stats().drainedWords;
    }

    if (!res.ok) {
        warn("workload '%s' on %s/%s failed (status=%s code=0x%x after "
             "%llu cycles)%s%s",
             winfo.name.c_str(), coreKindName(core), unit.name().c_str(),
             runStatusName(res.status), res.exitCode,
             static_cast<unsigned long long>(res.cycles),
             res.diagnostic.empty() ? "" : ": ",
             res.diagnostic.c_str());
    }
    return res;
}

RunResult
runWorkload(CoreKind core, const RtosUnitConfig &unit,
            const Workload &workload, Word timer_period_cycles)
{
    RunOptions opts;
    opts.timerPeriodCycles = timer_period_cycles;
    return runWorkload(core, unit, workload, opts);
}

std::vector<RunResult>
runSuite(CoreKind core, const RtosUnitConfig &unit, unsigned iterations,
         Word timer_period_cycles)
{
    std::vector<RunResult> out;
    for (const auto &w : standardSuite(iterations))
        out.push_back(runWorkload(core, unit, *w, timer_period_cycles));
    return out;
}

SampleStats
mergeSwitchLatencies(const std::vector<RunResult> &runs)
{
    SampleStats merged;
    for (const RunResult &r : runs)
        merged.merge(r.switchLatency);
    return merged;
}

} // namespace rtu
