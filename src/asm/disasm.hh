/**
 * @file
 * Disassembler for execution traces and debugging.
 */

#ifndef RTU_ASM_DISASM_HH
#define RTU_ASM_DISASM_HH

#include <string>

#include "common/types.hh"
#include "insn.hh"

namespace rtu {

/** Render one decoded instruction, e.g. "addi sp, sp, -16". */
std::string disassemble(const DecodedInsn &insn);

/** Decode and render a raw word. */
std::string disassemble(Word raw);

} // namespace rtu

#endif // RTU_ASM_DISASM_HH
