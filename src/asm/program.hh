/**
 * @file
 * Assembled guest program image: text, data, symbols and WCET
 * annotations.
 */

#ifndef RTU_ASM_PROGRAM_HH
#define RTU_ASM_PROGRAM_HH

#include <map>
#include <string>
#include <vector>

#include "common/types.hh"

namespace rtu {

/**
 * The output of the Assembler: two contiguous sections plus metadata.
 * Loaded verbatim into the simulated IMEM/DMEM.
 */
struct Program
{
    Addr textBase = 0;
    std::vector<Word> text;

    Addr dataBase = 0;
    std::vector<Word> data;

    /** Symbol name -> absolute address (labels and data symbols). */
    std::map<std::string, Addr> symbols;

    /**
     * WCET annotations: address of a loop's conditional back-edge or
     * guard branch -> maximum iteration count. Consumed by the static
     * analyzer (src/wcet).
     */
    std::map<Addr, unsigned> loopBounds;

    /** Function name -> [start, end) address range, for traces. */
    std::map<std::string, std::pair<Addr, Addr>> functions;

    Addr textEnd() const { return textBase + 4 * text.size(); }
    Addr dataEnd() const { return dataBase + 4 * data.size(); }

    /** Lookup that fails loudly when a symbol is missing. */
    Addr symbol(const std::string &name) const;

    /** Name of the function containing @p addr, or "" if unknown. */
    std::string functionAt(Addr addr) const;
};

} // namespace rtu

#endif // RTU_ASM_PROGRAM_HH
