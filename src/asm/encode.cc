#include "encode.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace rtu {

namespace {

constexpr Word kOpcLui = 0x37;
constexpr Word kOpcAuipc = 0x17;
constexpr Word kOpcJal = 0x6F;
constexpr Word kOpcJalr = 0x67;
constexpr Word kOpcBranch = 0x63;
constexpr Word kOpcLoad = 0x03;
constexpr Word kOpcStore = 0x23;
constexpr Word kOpcOpImm = 0x13;
constexpr Word kOpcOp = 0x33;
constexpr Word kOpcMiscMem = 0x0F;
constexpr Word kOpcSystem = 0x73;
constexpr Word kOpcCustom0 = 0x0B;

Word
rType(Word funct7, RegIndex rs2, RegIndex rs1, Word funct3, RegIndex rd,
      Word opcode)
{
    return insertBits(funct7, 31, 25) | insertBits(rs2, 24, 20) |
           insertBits(rs1, 19, 15) | insertBits(funct3, 14, 12) |
           insertBits(rd, 11, 7) | opcode;
}

Word
iType(SWord imm, RegIndex rs1, Word funct3, RegIndex rd, Word opcode)
{
    rtu_assert(fitsSigned(imm, 12), "I-imm %d out of range", imm);
    return insertBits(static_cast<Word>(imm), 31, 20) |
           insertBits(rs1, 19, 15) | insertBits(funct3, 14, 12) |
           insertBits(rd, 11, 7) | opcode;
}

Word
sType(SWord imm, RegIndex rs2, RegIndex rs1, Word funct3, Word opcode)
{
    rtu_assert(fitsSigned(imm, 12), "S-imm %d out of range", imm);
    const Word uimm = static_cast<Word>(imm);
    return insertBits(bits(uimm, 11, 5), 31, 25) |
           insertBits(rs2, 24, 20) | insertBits(rs1, 19, 15) |
           insertBits(funct3, 14, 12) |
           insertBits(bits(uimm, 4, 0), 11, 7) | opcode;
}

Word
bType(SWord imm, RegIndex rs2, RegIndex rs1, Word funct3, Word opcode)
{
    rtu_assert(fitsSigned(imm, 13) && (imm & 1) == 0,
               "B-imm %d out of range or misaligned", imm);
    const Word uimm = static_cast<Word>(imm);
    return insertBits(bit(uimm, 12), 31, 31) |
           insertBits(bits(uimm, 10, 5), 30, 25) |
           insertBits(rs2, 24, 20) | insertBits(rs1, 19, 15) |
           insertBits(funct3, 14, 12) |
           insertBits(bits(uimm, 4, 1), 11, 8) |
           insertBits(bit(uimm, 11), 7, 7) | opcode;
}

Word
uType(SWord imm, RegIndex rd, Word opcode)
{
    // imm is the value for bits [31:12].
    return insertBits(static_cast<Word>(imm), 31, 12) |
           insertBits(rd, 11, 7) | opcode;
}

Word
jType(SWord imm, RegIndex rd, Word opcode)
{
    rtu_assert(fitsSigned(imm, 21) && (imm & 1) == 0,
               "J-imm %d out of range or misaligned", imm);
    const Word uimm = static_cast<Word>(imm);
    return insertBits(bit(uimm, 20), 31, 31) |
           insertBits(bits(uimm, 10, 1), 30, 21) |
           insertBits(bit(uimm, 11), 20, 20) |
           insertBits(bits(uimm, 19, 12), 19, 12) |
           insertBits(rd, 11, 7) | opcode;
}

Word
csrType(std::uint16_t csr, RegIndex rs1, Word funct3, RegIndex rd)
{
    return insertBits(csr, 31, 20) | insertBits(rs1, 19, 15) |
           insertBits(funct3, 14, 12) | insertBits(rd, 11, 7) |
           kOpcSystem;
}

Word
shiftImm(Word funct7, SWord shamt, RegIndex rs1, Word funct3, RegIndex rd)
{
    rtu_assert(shamt >= 0 && shamt < 32, "shamt %d out of range", shamt);
    return insertBits(funct7, 31, 25) |
           insertBits(static_cast<Word>(shamt), 24, 20) |
           insertBits(rs1, 19, 15) | insertBits(funct3, 14, 12) |
           insertBits(rd, 11, 7) | kOpcOpImm;
}

} // namespace

Word
encode(Op op, RegIndex rd, RegIndex rs1, RegIndex rs2, SWord imm,
       std::uint16_t csr)
{
    switch (op) {
      case Op::kLui: return uType(imm, rd, kOpcLui);
      case Op::kAuipc: return uType(imm, rd, kOpcAuipc);
      case Op::kJal: return jType(imm, rd, kOpcJal);
      case Op::kJalr: return iType(imm, rs1, 0, rd, kOpcJalr);

      case Op::kBeq: return bType(imm, rs2, rs1, 0, kOpcBranch);
      case Op::kBne: return bType(imm, rs2, rs1, 1, kOpcBranch);
      case Op::kBlt: return bType(imm, rs2, rs1, 4, kOpcBranch);
      case Op::kBge: return bType(imm, rs2, rs1, 5, kOpcBranch);
      case Op::kBltu: return bType(imm, rs2, rs1, 6, kOpcBranch);
      case Op::kBgeu: return bType(imm, rs2, rs1, 7, kOpcBranch);

      case Op::kLb: return iType(imm, rs1, 0, rd, kOpcLoad);
      case Op::kLh: return iType(imm, rs1, 1, rd, kOpcLoad);
      case Op::kLw: return iType(imm, rs1, 2, rd, kOpcLoad);
      case Op::kLbu: return iType(imm, rs1, 4, rd, kOpcLoad);
      case Op::kLhu: return iType(imm, rs1, 5, rd, kOpcLoad);

      case Op::kSb: return sType(imm, rs2, rs1, 0, kOpcStore);
      case Op::kSh: return sType(imm, rs2, rs1, 1, kOpcStore);
      case Op::kSw: return sType(imm, rs2, rs1, 2, kOpcStore);

      case Op::kAddi: return iType(imm, rs1, 0, rd, kOpcOpImm);
      case Op::kSlti: return iType(imm, rs1, 2, rd, kOpcOpImm);
      case Op::kSltiu: return iType(imm, rs1, 3, rd, kOpcOpImm);
      case Op::kXori: return iType(imm, rs1, 4, rd, kOpcOpImm);
      case Op::kOri: return iType(imm, rs1, 6, rd, kOpcOpImm);
      case Op::kAndi: return iType(imm, rs1, 7, rd, kOpcOpImm);
      case Op::kSlli: return shiftImm(0x00, imm, rs1, 1, rd);
      case Op::kSrli: return shiftImm(0x00, imm, rs1, 5, rd);
      case Op::kSrai: return shiftImm(0x20, imm, rs1, 5, rd);

      case Op::kAdd: return rType(0x00, rs2, rs1, 0, rd, kOpcOp);
      case Op::kSub: return rType(0x20, rs2, rs1, 0, rd, kOpcOp);
      case Op::kSll: return rType(0x00, rs2, rs1, 1, rd, kOpcOp);
      case Op::kSlt: return rType(0x00, rs2, rs1, 2, rd, kOpcOp);
      case Op::kSltu: return rType(0x00, rs2, rs1, 3, rd, kOpcOp);
      case Op::kXor: return rType(0x00, rs2, rs1, 4, rd, kOpcOp);
      case Op::kSrl: return rType(0x00, rs2, rs1, 5, rd, kOpcOp);
      case Op::kSra: return rType(0x20, rs2, rs1, 5, rd, kOpcOp);
      case Op::kOr: return rType(0x00, rs2, rs1, 6, rd, kOpcOp);
      case Op::kAnd: return rType(0x00, rs2, rs1, 7, rd, kOpcOp);

      case Op::kMul: return rType(0x01, rs2, rs1, 0, rd, kOpcOp);
      case Op::kMulh: return rType(0x01, rs2, rs1, 1, rd, kOpcOp);
      case Op::kMulhsu: return rType(0x01, rs2, rs1, 2, rd, kOpcOp);
      case Op::kMulhu: return rType(0x01, rs2, rs1, 3, rd, kOpcOp);
      case Op::kDiv: return rType(0x01, rs2, rs1, 4, rd, kOpcOp);
      case Op::kDivu: return rType(0x01, rs2, rs1, 5, rd, kOpcOp);
      case Op::kRem: return rType(0x01, rs2, rs1, 6, rd, kOpcOp);
      case Op::kRemu: return rType(0x01, rs2, rs1, 7, rd, kOpcOp);

      case Op::kFence: return iType(0, 0, 0, 0, kOpcMiscMem);
      case Op::kEcall: return iType(0, 0, 0, 0, kOpcSystem);
      case Op::kEbreak: return iType(1, 0, 0, 0, kOpcSystem);
      case Op::kMret: return rType(0x18, 2, 0, 0, 0, kOpcSystem);
      case Op::kWfi: return rType(0x08, 5, 0, 0, 0, kOpcSystem);

      case Op::kCsrrw: return csrType(csr, rs1, 1, rd);
      case Op::kCsrrs: return csrType(csr, rs1, 2, rd);
      case Op::kCsrrc: return csrType(csr, rs1, 3, rd);
      case Op::kCsrrwi:
        return csrType(csr, static_cast<RegIndex>(imm & 0x1F), 5, rd);
      case Op::kCsrrsi:
        return csrType(csr, static_cast<RegIndex>(imm & 0x1F), 6, rd);
      case Op::kCsrrci:
        return csrType(csr, static_cast<RegIndex>(imm & 0x1F), 7, rd);

      // Custom-0, R-type, funct3 = 0, funct7 selects the operation.
      case Op::kSetContextId:
        return rType(0x00, 0, rs1, 0, 0, kOpcCustom0);
      case Op::kGetHwSched:
        return rType(0x01, 0, 0, 0, rd, kOpcCustom0);
      case Op::kAddReady:
        return rType(0x02, rs2, rs1, 0, 0, kOpcCustom0);
      case Op::kAddDelay:
        return rType(0x03, rs2, rs1, 0, 0, kOpcCustom0);
      case Op::kRmTask:
        return rType(0x04, 0, rs1, 0, 0, kOpcCustom0);
      case Op::kSwitchRf:
        return rType(0x05, 0, 0, 0, 0, kOpcCustom0);
      case Op::kSemTake:
        return rType(0x06, 0, rs1, 0, rd, kOpcCustom0);
      case Op::kSemGive:
        return rType(0x07, 0, rs1, 0, rd, kOpcCustom0);

      case Op::kInvalid:
        break;
    }
    panic("cannot encode opcode %s", opName(op));
}

Word
encode(const DecodedInsn &insn)
{
    return encode(insn.op, insn.rd, insn.rs1, insn.rs2, insn.imm, insn.csr);
}

} // namespace rtu
