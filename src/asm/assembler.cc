#include "assembler.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"
#include "decode.hh"
#include "encode.hh"

namespace rtu {

Assembler::Assembler(Addr text_base, Addr data_base)
    : textBase_(text_base), dataBase_(data_base)
{
    rtu_assert(isAligned(text_base, 4) && isAligned(data_base, 4),
               "section bases must be word aligned");
}

void
Assembler::label(const std::string &name)
{
    rtu_assert(!finished_, "label after finish()");
    auto [it, inserted] = symbols_.emplace(name, here());
    (void)it;
    if (!inserted)
        panic("duplicate label '%s'", name.c_str());
}

void
Assembler::fnBegin(const std::string &name)
{
    rtu_assert(currentFn_.empty(), "nested fnBegin('%s') inside '%s'",
               name.c_str(), currentFn_.c_str());
    currentFn_ = name;
    currentFnStart_ = here();
    label(name);
}

void
Assembler::fnEnd()
{
    rtu_assert(!currentFn_.empty(), "fnEnd without fnBegin");
    functions_[currentFn_] = {currentFnStart_, here()};
    currentFn_.clear();
}

Addr
Assembler::here() const
{
    return textBase_ + 4 * static_cast<Addr>(text_.size());
}

void
Assembler::loopBound(unsigned bound)
{
    rtu_assert(!hasPendingLoopBound_, "two loopBound() without a branch");
    pendingLoopBound_ = bound;
    hasPendingLoopBound_ = true;
}

Addr
Assembler::dataWord(const std::string &name, Word init)
{
    const Addr addr = dataBase_ + 4 * static_cast<Addr>(data_.size());
    data_.push_back(init);
    if (!name.empty()) {
        auto [it, inserted] = symbols_.emplace(name, addr);
        (void)it;
        if (!inserted)
            panic("duplicate data symbol '%s'", name.c_str());
    }
    return addr;
}

Addr
Assembler::dataArray(const std::string &name, size_t count, Word init)
{
    rtu_assert(count > 0, "empty data array '%s'", name.c_str());
    const Addr addr = dataWord(name, init);
    for (size_t i = 1; i < count; ++i)
        dataWord("", init);
    return addr;
}

void
Assembler::dataAlign(Addr align)
{
    rtu_assert(align >= 4 && (align & (align - 1)) == 0,
               "bad alignment %u", align);
    while (!isAligned(dataBase_ + 4 * static_cast<Addr>(data_.size()),
                      align)) {
        data_.push_back(0);
    }
}

void
Assembler::emit(Word insn)
{
    rtu_assert(!finished_, "emit after finish()");
    if (hasPendingLoopBound_) {
        loopBounds_[here()] = pendingLoopBound_;
        hasPendingLoopBound_ = false;
    }
    text_.push_back(insn);
}

Addr
Assembler::addrOfIndex(size_t index) const
{
    return textBase_ + 4 * static_cast<Addr>(index);
}

// ---- RV32I ----------------------------------------------------------

void Assembler::lui(Reg rd, SWord imm20)
{ emit(encode(Op::kLui, rd, 0, 0, imm20)); }

void Assembler::auipc(Reg rd, SWord imm20)
{ emit(encode(Op::kAuipc, rd, 0, 0, imm20)); }

void
Assembler::jal(Reg rd, const std::string &target)
{
    fixups_.push_back({text_.size(), FixupKind::kJal, target});
    emit(encode(Op::kJal, rd, 0, 0, 0));
}

void Assembler::jalr(Reg rd, Reg rs1, SWord imm)
{ emit(encode(Op::kJalr, rd, rs1, 0, imm)); }

#define RTU_BRANCH(NAME, OP)                                              \
    void                                                                  \
    Assembler::NAME(Reg rs1, Reg rs2, const std::string &target)          \
    {                                                                     \
        fixups_.push_back({text_.size(), FixupKind::kBranch, target});    \
        emit(encode(OP, 0, rs1, rs2, 0));                                 \
    }

RTU_BRANCH(beq, Op::kBeq)
RTU_BRANCH(bne, Op::kBne)
RTU_BRANCH(blt, Op::kBlt)
RTU_BRANCH(bge, Op::kBge)
RTU_BRANCH(bltu, Op::kBltu)
RTU_BRANCH(bgeu, Op::kBgeu)
#undef RTU_BRANCH

#define RTU_LOAD(NAME, OP)                                                \
    void                                                                  \
    Assembler::NAME(Reg rd, SWord off, Reg base)                          \
    { emit(encode(OP, rd, base, 0, off)); }

RTU_LOAD(lb, Op::kLb)
RTU_LOAD(lh, Op::kLh)
RTU_LOAD(lw, Op::kLw)
RTU_LOAD(lbu, Op::kLbu)
RTU_LOAD(lhu, Op::kLhu)
#undef RTU_LOAD

#define RTU_STORE(NAME, OP)                                               \
    void                                                                  \
    Assembler::NAME(Reg rs2, SWord off, Reg base)                         \
    { emit(encode(OP, 0, base, rs2, off)); }

RTU_STORE(sb, Op::kSb)
RTU_STORE(sh, Op::kSh)
RTU_STORE(sw, Op::kSw)
#undef RTU_STORE

#define RTU_OPIMM(NAME, OP)                                               \
    void                                                                  \
    Assembler::NAME(Reg rd, Reg rs1, SWord imm)                           \
    { emit(encode(OP, rd, rs1, 0, imm)); }

RTU_OPIMM(addi, Op::kAddi)
RTU_OPIMM(slti, Op::kSlti)
RTU_OPIMM(sltiu, Op::kSltiu)
RTU_OPIMM(xori, Op::kXori)
RTU_OPIMM(ori, Op::kOri)
RTU_OPIMM(andi, Op::kAndi)
RTU_OPIMM(slli, Op::kSlli)
RTU_OPIMM(srli, Op::kSrli)
RTU_OPIMM(srai, Op::kSrai)
#undef RTU_OPIMM

#define RTU_OP(NAME, OP)                                                  \
    void                                                                  \
    Assembler::NAME(Reg rd, Reg rs1, Reg rs2)                             \
    { emit(encode(OP, rd, rs1, rs2, 0)); }

RTU_OP(add, Op::kAdd)
RTU_OP(sub, Op::kSub)
RTU_OP(sll, Op::kSll)
RTU_OP(slt, Op::kSlt)
RTU_OP(sltu, Op::kSltu)
RTU_OP(xor_, Op::kXor)
RTU_OP(srl, Op::kSrl)
RTU_OP(sra, Op::kSra)
RTU_OP(or_, Op::kOr)
RTU_OP(and_, Op::kAnd)
RTU_OP(mul, Op::kMul)
RTU_OP(mulh, Op::kMulh)
RTU_OP(mulhsu, Op::kMulhsu)
RTU_OP(mulhu, Op::kMulhu)
RTU_OP(div, Op::kDiv)
RTU_OP(divu, Op::kDivu)
RTU_OP(rem, Op::kRem)
RTU_OP(remu, Op::kRemu)
#undef RTU_OP

void Assembler::fence() { emit(encode(Op::kFence, 0, 0, 0, 0)); }
void Assembler::ecall() { emit(encode(Op::kEcall, 0, 0, 0, 0)); }
void Assembler::ebreak() { emit(encode(Op::kEbreak, 0, 0, 0, 0)); }
void Assembler::mret() { emit(encode(Op::kMret, 0, 0, 0, 0)); }
void Assembler::wfi() { emit(encode(Op::kWfi, 0, 0, 0, 0)); }

// ---- Zicsr ----------------------------------------------------------

void Assembler::csrrw(Reg rd, std::uint16_t csr, Reg rs1)
{ emit(encode(Op::kCsrrw, rd, rs1, 0, 0, csr)); }
void Assembler::csrrs(Reg rd, std::uint16_t csr, Reg rs1)
{ emit(encode(Op::kCsrrs, rd, rs1, 0, 0, csr)); }
void Assembler::csrrc(Reg rd, std::uint16_t csr, Reg rs1)
{ emit(encode(Op::kCsrrc, rd, rs1, 0, 0, csr)); }
void Assembler::csrrwi(Reg rd, std::uint16_t csr, Word uimm5)
{ emit(encode(Op::kCsrrwi, rd, 0, 0, static_cast<SWord>(uimm5), csr)); }
void Assembler::csrrsi(Reg rd, std::uint16_t csr, Word uimm5)
{ emit(encode(Op::kCsrrsi, rd, 0, 0, static_cast<SWord>(uimm5), csr)); }
void Assembler::csrrci(Reg rd, std::uint16_t csr, Word uimm5)
{ emit(encode(Op::kCsrrci, rd, 0, 0, static_cast<SWord>(uimm5), csr)); }

// ---- RTOSUnit custom instructions ------------------------------------

void Assembler::rtuSetContextId(Reg rs1)
{ emit(encode(Op::kSetContextId, 0, rs1, 0, 0)); }
void Assembler::rtuGetHwSched(Reg rd)
{ emit(encode(Op::kGetHwSched, rd, 0, 0, 0)); }
void Assembler::rtuAddReady(Reg rs1, Reg rs2)
{ emit(encode(Op::kAddReady, 0, rs1, rs2, 0)); }
void Assembler::rtuAddDelay(Reg rs1, Reg rs2)
{ emit(encode(Op::kAddDelay, 0, rs1, rs2, 0)); }
void Assembler::rtuRmTask(Reg rs1)
{ emit(encode(Op::kRmTask, 0, rs1, 0, 0)); }
void Assembler::rtuSwitchRf()
{ emit(encode(Op::kSwitchRf, 0, 0, 0, 0)); }
void Assembler::rtuSemTake(Reg rd, Reg rs1)
{ emit(encode(Op::kSemTake, rd, rs1, 0, 0)); }
void Assembler::rtuSemGive(Reg rd, Reg rs1)
{ emit(encode(Op::kSemGive, rd, rs1, 0, 0)); }

// ---- pseudo-instructions ---------------------------------------------

void Assembler::nop() { addi(Zero, Zero, 0); }
void Assembler::mv(Reg rd, Reg rs) { addi(rd, rs, 0); }

void
Assembler::li(Reg rd, SWord value)
{
    if (fitsSigned(value, 12)) {
        addi(rd, Zero, value);
        return;
    }
    const Word uval = static_cast<Word>(value);
    const Word hi = (uval + 0x800) >> 12;
    const SWord lo = sext(uval & 0xFFF, 12);
    lui(rd, static_cast<SWord>(hi));
    if (lo != 0)
        addi(rd, rd, lo);
}

void
Assembler::la(Reg rd, const std::string &sym)
{
    // Always the two-instruction absolute form so that forward
    // references resolve without a length change.
    fixups_.push_back({text_.size(), FixupKind::kLuiHi, sym});
    emit(encode(Op::kLui, rd, 0, 0, 0));
    fixups_.push_back({text_.size(), FixupKind::kAddiLo, sym});
    emit(encode(Op::kAddi, rd, rd, 0, 0));
}

void Assembler::j(const std::string &target) { jal(Zero, target); }
void Assembler::call(const std::string &target) { jal(RA, target); }
void Assembler::ret() { jalr(Zero, RA, 0); }
void Assembler::csrr(Reg rd, std::uint16_t csr) { csrrs(rd, csr, Zero); }
void Assembler::csrw(std::uint16_t csr, Reg rs) { csrrw(Zero, csr, rs); }
void Assembler::beqz(Reg rs, const std::string &t) { beq(rs, Zero, t); }
void Assembler::bnez(Reg rs, const std::string &t) { bne(rs, Zero, t); }

// ---- finalize ---------------------------------------------------------

Program
Assembler::finish()
{
    rtu_assert(!finished_, "finish() called twice");
    rtu_assert(currentFn_.empty(), "finish() inside function '%s'",
               currentFn_.c_str());
    rtu_assert(!hasPendingLoopBound_, "dangling loopBound()");
    finished_ = true;

    for (const Fixup &fx : fixups_) {
        auto sym = symbols_.find(fx.target);
        if (sym == symbols_.end())
            panic("undefined label '%s'", fx.target.c_str());
        const Addr target = sym->second;
        const Addr pc = addrOfIndex(fx.index);
        DecodedInsn d{};
        const Word old = text_[fx.index];

        switch (fx.kind) {
          case FixupKind::kBranch: {
            const SWord off = static_cast<SWord>(target - pc);
            if (!fitsSigned(off, 13))
                panic("branch to '%s' out of range (%d bytes)",
                      fx.target.c_str(), off);
            d = decode(old);
            d.imm = off;
            text_[fx.index] = encode(d);
            break;
          }
          case FixupKind::kJal: {
            const SWord off = static_cast<SWord>(target - pc);
            if (!fitsSigned(off, 21))
                panic("jal to '%s' out of range (%d bytes)",
                      fx.target.c_str(), off);
            d = decode(old);
            d.imm = off;
            text_[fx.index] = encode(d);
            break;
          }
          case FixupKind::kLuiHi: {
            d = decode(old);
            d.imm = static_cast<SWord>((target + 0x800) >> 12);
            text_[fx.index] = encode(d);
            break;
          }
          case FixupKind::kAddiLo: {
            d = decode(old);
            d.imm = sext(target & 0xFFF, 12);
            text_[fx.index] = encode(d);
            break;
          }
        }
    }

    Program prog;
    prog.textBase = textBase_;
    prog.text = std::move(text_);
    prog.dataBase = dataBase_;
    prog.data = std::move(data_);
    prog.symbols = std::move(symbols_);
    prog.loopBounds = std::move(loopBounds_);
    prog.functions = std::move(functions_);
    if (prog.textEnd() > dataBase_ && prog.textBase < prog.dataEnd())
        panic("text section overlaps data section");
    return prog;
}

} // namespace rtu
