/**
 * @file
 * Instruction encoding: DecodedInsn / explicit fields -> 32-bit word.
 */

#ifndef RTU_ASM_ENCODE_HH
#define RTU_ASM_ENCODE_HH

#include "common/types.hh"
#include "insn.hh"

namespace rtu {

/**
 * Encode one instruction. Immediates must be in range for the format
 * (checked; out-of-range values panic, since the assembler is the only
 * caller and such values indicate an internal bug).
 */
Word encode(Op op, RegIndex rd, RegIndex rs1, RegIndex rs2, SWord imm,
            std::uint16_t csr = 0);

/** Encode from a decoded instruction (round-trip support). */
Word encode(const DecodedInsn &insn);

} // namespace rtu

#endif // RTU_ASM_ENCODE_HH
