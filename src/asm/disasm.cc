#include "disasm.hh"

#include "common/logging.hh"
#include "decode.hh"

namespace rtu {

std::string
disassemble(const DecodedInsn &d)
{
    const char *name = opName(d.op);
    switch (classOf(d.op)) {
      case InsnClass::kLoad:
        return csprintf("%s %s, %d(%s)", name, regName(d.rd), d.imm,
                        regName(d.rs1));
      case InsnClass::kStore:
        return csprintf("%s %s, %d(%s)", name, regName(d.rs2), d.imm,
                        regName(d.rs1));
      case InsnClass::kBranch:
        return csprintf("%s %s, %s, %d", name, regName(d.rs1),
                        regName(d.rs2), d.imm);
      case InsnClass::kJump:
        if (d.op == Op::kJal)
            return csprintf("%s %s, %d", name, regName(d.rd), d.imm);
        return csprintf("%s %s, %d(%s)", name, regName(d.rd), d.imm,
                        regName(d.rs1));
      case InsnClass::kCsr:
        if (d.op == Op::kCsrrwi || d.op == Op::kCsrrsi ||
            d.op == Op::kCsrrci) {
            return csprintf("%s %s, 0x%x, %d", name, regName(d.rd),
                            d.csr, d.imm);
        }
        return csprintf("%s %s, 0x%x, %s", name, regName(d.rd), d.csr,
                        regName(d.rs1));
      case InsnClass::kSystem:
        return name;
      case InsnClass::kCustom:
        switch (d.op) {
          case Op::kSetContextId:
          case Op::kRmTask:
            return csprintf("%s %s", name, regName(d.rs1));
          case Op::kGetHwSched:
            return csprintf("%s %s", name, regName(d.rd));
          case Op::kAddReady:
          case Op::kAddDelay:
            return csprintf("%s %s, %s", name, regName(d.rs1),
                            regName(d.rs2));
          default:
            return name;
        }
      default:
        break;
    }
    // ALU-class formats.
    switch (d.op) {
      case Op::kLui:
      case Op::kAuipc:
        return csprintf("%s %s, 0x%x", name, regName(d.rd),
                        static_cast<Word>(d.imm));
      case Op::kAddi: case Op::kSlti: case Op::kSltiu: case Op::kXori:
      case Op::kOri: case Op::kAndi: case Op::kSlli: case Op::kSrli:
      case Op::kSrai:
        return csprintf("%s %s, %s, %d", name, regName(d.rd),
                        regName(d.rs1), d.imm);
      case Op::kInvalid:
        return csprintf("<invalid 0x%08x>", d.raw);
      default:
        return csprintf("%s %s, %s, %s", name, regName(d.rd),
                        regName(d.rs1), regName(d.rs2));
    }
}

std::string
disassemble(Word raw)
{
    return disassemble(decode(raw));
}

} // namespace rtu
