/**
 * @file
 * Instruction decoding: 32-bit word -> DecodedInsn.
 */

#ifndef RTU_ASM_DECODE_HH
#define RTU_ASM_DECODE_HH

#include "common/types.hh"
#include "insn.hh"

namespace rtu {

/**
 * Decode one 32-bit instruction word. Unknown encodings yield
 * Op::kInvalid (the executor raises an illegal-instruction trap).
 */
DecodedInsn decode(Word raw);

} // namespace rtu

#endif // RTU_ASM_DECODE_HH
