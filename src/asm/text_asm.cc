#include "text_asm.hh"

#include <map>
#include <sstream>
#include <vector>

#include "common/logging.hh"

namespace rtu {

namespace {

struct Line
{
    unsigned number;
    std::string mnemonic;
    std::vector<std::string> operands;
};

[[noreturn]] void
syntaxError(unsigned line, const std::string &msg)
{
    fatal("text assembly, line %u: %s", line, msg.c_str());
}

std::string
trim(const std::string &s)
{
    const auto a = s.find_first_not_of(" \t\r");
    if (a == std::string::npos)
        return "";
    const auto b = s.find_last_not_of(" \t\r");
    return s.substr(a, b - a + 1);
}

const std::map<std::string, Reg> &
regNames()
{
    static const std::map<std::string, Reg> names = [] {
        std::map<std::string, Reg> m;
        for (unsigned i = 0; i < 32; ++i) {
            m[regName(static_cast<RegIndex>(i))] =
                static_cast<Reg>(i);
            m["x" + std::to_string(i)] = static_cast<Reg>(i);
        }
        m["fp"] = S0;
        return m;
    }();
    return names;
}

Reg
parseReg(const std::string &tok, unsigned line)
{
    auto it = regNames().find(tok);
    if (it == regNames().end())
        syntaxError(line, "unknown register '" + tok + "'");
    return it->second;
}

SWord
parseImm(const std::string &tok, unsigned line)
{
    try {
        size_t pos = 0;
        const long v = std::stol(tok, &pos, 0);  // dec, 0x hex, 0 octal
        if (pos != tok.size())
            syntaxError(line, "bad immediate '" + tok + "'");
        return static_cast<SWord>(v);
    } catch (const std::exception &) {
        syntaxError(line, "bad immediate '" + tok + "'");
    }
}

std::uint16_t
parseCsr(const std::string &tok, unsigned line)
{
    static const std::map<std::string, std::uint16_t> names = {
        {"mstatus", csr::kMstatus}, {"mie", csr::kMie},
        {"mtvec", csr::kMtvec},     {"mscratch", csr::kMscratch},
        {"mepc", csr::kMepc},       {"mcause", csr::kMcause},
        {"mtval", csr::kMtval},     {"mip", csr::kMip},
        {"mcycle", csr::kMcycle},   {"mhartid", csr::kMhartid},
    };
    auto it = names.find(tok);
    if (it != names.end())
        return it->second;
    return static_cast<std::uint16_t>(parseImm(tok, line));
}

/** Split "off(base)" memory operands. */
void
parseMemOperand(const std::string &tok, unsigned line, SWord *off,
                Reg *base)
{
    const auto lp = tok.find('(');
    const auto rp = tok.find(')');
    if (lp == std::string::npos || rp == std::string::npos || rp < lp)
        syntaxError(line, "expected off(base), got '" + tok + "'");
    const std::string off_s = trim(tok.substr(0, lp));
    *off = off_s.empty() ? 0 : parseImm(off_s, line);
    *base = parseReg(trim(tok.substr(lp + 1, rp - lp - 1)), line);
}

Line
tokenize(const std::string &raw, unsigned number)
{
    Line out;
    out.number = number;
    std::string text = raw;
    const auto comment = text.find('#');
    if (comment != std::string::npos)
        text = text.substr(0, comment);
    text = trim(text);
    if (text.empty())
        return out;

    const auto space = text.find_first_of(" \t");
    out.mnemonic = text.substr(0, space);
    if (space != std::string::npos) {
        std::string rest = text.substr(space + 1);
        std::string tok;
        std::stringstream ss(rest);
        while (std::getline(ss, tok, ',')) {
            // Directive operands are whitespace-separated; split those
            // too (instruction operands never contain spaces).
            std::stringstream ws(trim(tok));
            std::string part;
            while (ws >> part)
                out.operands.push_back(part);
        }
    }
    return out;
}

} // namespace

void
assembleText(Assembler &a, const std::string &source)
{
    std::stringstream stream(source);
    std::string raw;
    unsigned number = 0;

    while (std::getline(stream, raw)) {
        ++number;
        // Labels may share a line with an instruction.
        std::string text = raw;
        const auto colon = text.find(':');
        if (colon != std::string::npos &&
            text.find('#') > colon) {
            const std::string name = trim(text.substr(0, colon));
            if (name.empty() || name.find(' ') != std::string::npos)
                syntaxError(number, "bad label '" + name + "'");
            a.label(name);
            text = text.substr(colon + 1);
        }
        const Line ln = tokenize(text, number);
        if (ln.mnemonic.empty())
            continue;
        const auto &ops = ln.operands;
        auto need = [&](size_t n) {
            if (ops.size() != n) {
                syntaxError(ln.number,
                            "'" + ln.mnemonic + "' expects " +
                                std::to_string(n) + " operands, got " +
                                std::to_string(ops.size()));
            }
        };
        auto r = [&](size_t i) { return parseReg(ops[i], ln.number); };
        auto imm = [&](size_t i) { return parseImm(ops[i], ln.number); };

        const std::string &m = ln.mnemonic;

        // Directives.
        if (m == ".word") {
            need(2);
            a.dataWord(ops[0],
                       static_cast<Word>(parseImm(ops[1], ln.number)));
            continue;
        }
        if (m == ".array") {
            need(2);
            a.dataArray(ops[0],
                        static_cast<size_t>(parseImm(ops[1], ln.number)));
            continue;
        }
        if (m == ".loopbound") {
            need(1);
            a.loopBound(static_cast<unsigned>(imm(0)));
            continue;
        }

        // Pseudo-instructions.
        if (m == "nop") { need(0); a.nop(); continue; }
        if (m == "ret") { need(0); a.ret(); continue; }
        if (m == "mv") { need(2); a.mv(r(0), r(1)); continue; }
        if (m == "li") { need(2); a.li(r(0), imm(1)); continue; }
        if (m == "la") { need(2); a.la(r(0), ops[1]); continue; }
        if (m == "j") { need(1); a.j(ops[0]); continue; }
        if (m == "call") { need(1); a.call(ops[0]); continue; }
        if (m == "beqz") { need(2); a.beqz(r(0), ops[1]); continue; }
        if (m == "bnez") { need(2); a.bnez(r(0), ops[1]); continue; }
        if (m == "csrr") {
            need(2);
            a.csrr(r(0), parseCsr(ops[1], ln.number));
            continue;
        }
        if (m == "csrw") {
            need(2);
            a.csrw(parseCsr(ops[0], ln.number), r(1));
            continue;
        }

        // U-type.
        if (m == "lui") { need(2); a.lui(r(0), imm(1)); continue; }
        if (m == "auipc") { need(2); a.auipc(r(0), imm(1)); continue; }

        // Jumps.
        if (m == "jal") {
            if (ops.size() == 1) {
                a.jal(RA, ops[0]);
            } else {
                need(2);
                a.jal(r(0), ops[1]);
            }
            continue;
        }
        if (m == "jalr") {
            need(3);
            a.jalr(r(0), r(1), imm(2));
            continue;
        }

        // Branches.
        {
            using BranchFn = void (Assembler::*)(Reg, Reg,
                                                 const std::string &);
            static const std::map<std::string, BranchFn> branches = {
                {"beq", &Assembler::beq},   {"bne", &Assembler::bne},
                {"blt", &Assembler::blt},   {"bge", &Assembler::bge},
                {"bltu", &Assembler::bltu}, {"bgeu", &Assembler::bgeu},
            };
            auto it = branches.find(m);
            if (it != branches.end()) {
                need(3);
                (a.*(it->second))(r(0), r(1), ops[2]);
                continue;
            }
        }

        // Loads / stores: "op reg, off(base)".
        {
            using MemFn = void (Assembler::*)(Reg, SWord, Reg);
            static const std::map<std::string, MemFn> loads = {
                {"lb", &Assembler::lb},   {"lh", &Assembler::lh},
                {"lw", &Assembler::lw},   {"lbu", &Assembler::lbu},
                {"lhu", &Assembler::lhu}, {"sb", &Assembler::sb},
                {"sh", &Assembler::sh},   {"sw", &Assembler::sw},
            };
            auto it = loads.find(m);
            if (it != loads.end()) {
                need(2);
                SWord off = 0;
                Reg base = Zero;
                parseMemOperand(ops[1], ln.number, &off, &base);
                (a.*(it->second))(r(0), off, base);
                continue;
            }
        }

        // Register-immediate ALU.
        {
            using ImmFn = void (Assembler::*)(Reg, Reg, SWord);
            static const std::map<std::string, ImmFn> immops = {
                {"addi", &Assembler::addi},   {"slti", &Assembler::slti},
                {"sltiu", &Assembler::sltiu}, {"xori", &Assembler::xori},
                {"ori", &Assembler::ori},     {"andi", &Assembler::andi},
                {"slli", &Assembler::slli},   {"srli", &Assembler::srli},
                {"srai", &Assembler::srai},
            };
            auto it = immops.find(m);
            if (it != immops.end()) {
                need(3);
                (a.*(it->second))(r(0), r(1), imm(2));
                continue;
            }
        }

        // Register-register ALU / M extension.
        {
            using RegFn = void (Assembler::*)(Reg, Reg, Reg);
            static const std::map<std::string, RegFn> regops = {
                {"add", &Assembler::add},     {"sub", &Assembler::sub},
                {"sll", &Assembler::sll},     {"slt", &Assembler::slt},
                {"sltu", &Assembler::sltu},   {"xor", &Assembler::xor_},
                {"srl", &Assembler::srl},     {"sra", &Assembler::sra},
                {"or", &Assembler::or_},      {"and", &Assembler::and_},
                {"mul", &Assembler::mul},     {"mulh", &Assembler::mulh},
                {"mulhsu", &Assembler::mulhsu},
                {"mulhu", &Assembler::mulhu}, {"div", &Assembler::div},
                {"divu", &Assembler::divu},   {"rem", &Assembler::rem},
                {"remu", &Assembler::remu},
            };
            auto it = regops.find(m);
            if (it != regops.end()) {
                need(3);
                (a.*(it->second))(r(0), r(1), r(2));
                continue;
            }
        }

        // System.
        if (m == "fence") { need(0); a.fence(); continue; }
        if (m == "ecall") { need(0); a.ecall(); continue; }
        if (m == "ebreak") { need(0); a.ebreak(); continue; }
        if (m == "mret") { need(0); a.mret(); continue; }
        if (m == "wfi") { need(0); a.wfi(); continue; }
        if (m == "csrrw") {
            need(3);
            a.csrrw(r(0), parseCsr(ops[1], ln.number), r(2));
            continue;
        }
        if (m == "csrrs") {
            need(3);
            a.csrrs(r(0), parseCsr(ops[1], ln.number), r(2));
            continue;
        }
        if (m == "csrrc") {
            need(3);
            a.csrrc(r(0), parseCsr(ops[1], ln.number), r(2));
            continue;
        }
        if (m == "csrrwi") {
            need(3);
            a.csrrwi(r(0), parseCsr(ops[1], ln.number),
                     static_cast<Word>(imm(2)));
            continue;
        }
        if (m == "csrrsi") {
            need(3);
            a.csrrsi(r(0), parseCsr(ops[1], ln.number),
                     static_cast<Word>(imm(2)));
            continue;
        }
        if (m == "csrrci") {
            need(3);
            a.csrrci(r(0), parseCsr(ops[1], ln.number),
                     static_cast<Word>(imm(2)));
            continue;
        }

        // RTOSUnit custom instructions (disassembler mnemonics).
        if (m == "rtu.setctx") { need(1); a.rtuSetContextId(r(0)); continue; }
        if (m == "rtu.getsched") { need(1); a.rtuGetHwSched(r(0)); continue; }
        if (m == "rtu.addready") {
            need(2);
            a.rtuAddReady(r(0), r(1));
            continue;
        }
        if (m == "rtu.adddelay") {
            need(2);
            a.rtuAddDelay(r(0), r(1));
            continue;
        }
        if (m == "rtu.rmtask") { need(1); a.rtuRmTask(r(0)); continue; }
        if (m == "rtu.switchrf") { need(0); a.rtuSwitchRf(); continue; }
        if (m == "rtu.semtake") {
            need(2);
            a.rtuSemTake(r(0), r(1));
            continue;
        }
        if (m == "rtu.semgive") {
            need(2);
            a.rtuSemGive(r(0), r(1));
            continue;
        }

        syntaxError(ln.number, "unknown mnemonic '" + m + "'");
    }
}

Program
assembleProgram(const std::string &source, Addr text_base,
                Addr data_base)
{
    Assembler a(text_base, data_base);
    assembleText(a, source);
    return a.finish();
}

} // namespace rtu
