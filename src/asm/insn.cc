#include "insn.hh"

#include "common/logging.hh"

namespace rtu {

const char *
regName(RegIndex reg)
{
    static const char *names[32] = {
        "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
        "s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
        "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
        "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
    };
    rtu_assert(reg < 32, "register index %u out of range", reg);
    return names[reg];
}

const char *
opName(Op op)
{
    switch (op) {
      case Op::kLui: return "lui";
      case Op::kAuipc: return "auipc";
      case Op::kJal: return "jal";
      case Op::kJalr: return "jalr";
      case Op::kBeq: return "beq";
      case Op::kBne: return "bne";
      case Op::kBlt: return "blt";
      case Op::kBge: return "bge";
      case Op::kBltu: return "bltu";
      case Op::kBgeu: return "bgeu";
      case Op::kLb: return "lb";
      case Op::kLh: return "lh";
      case Op::kLw: return "lw";
      case Op::kLbu: return "lbu";
      case Op::kLhu: return "lhu";
      case Op::kSb: return "sb";
      case Op::kSh: return "sh";
      case Op::kSw: return "sw";
      case Op::kAddi: return "addi";
      case Op::kSlti: return "slti";
      case Op::kSltiu: return "sltiu";
      case Op::kXori: return "xori";
      case Op::kOri: return "ori";
      case Op::kAndi: return "andi";
      case Op::kSlli: return "slli";
      case Op::kSrli: return "srli";
      case Op::kSrai: return "srai";
      case Op::kAdd: return "add";
      case Op::kSub: return "sub";
      case Op::kSll: return "sll";
      case Op::kSlt: return "slt";
      case Op::kSltu: return "sltu";
      case Op::kXor: return "xor";
      case Op::kSrl: return "srl";
      case Op::kSra: return "sra";
      case Op::kOr: return "or";
      case Op::kAnd: return "and";
      case Op::kFence: return "fence";
      case Op::kEcall: return "ecall";
      case Op::kEbreak: return "ebreak";
      case Op::kMret: return "mret";
      case Op::kWfi: return "wfi";
      case Op::kCsrrw: return "csrrw";
      case Op::kCsrrs: return "csrrs";
      case Op::kCsrrc: return "csrrc";
      case Op::kCsrrwi: return "csrrwi";
      case Op::kCsrrsi: return "csrrsi";
      case Op::kCsrrci: return "csrrci";
      case Op::kMul: return "mul";
      case Op::kMulh: return "mulh";
      case Op::kMulhsu: return "mulhsu";
      case Op::kMulhu: return "mulhu";
      case Op::kDiv: return "div";
      case Op::kDivu: return "divu";
      case Op::kRem: return "rem";
      case Op::kRemu: return "remu";
      case Op::kSetContextId: return "rtu.setctx";
      case Op::kGetHwSched: return "rtu.getsched";
      case Op::kAddReady: return "rtu.addready";
      case Op::kAddDelay: return "rtu.adddelay";
      case Op::kRmTask: return "rtu.rmtask";
      case Op::kSwitchRf: return "rtu.switchrf";
      case Op::kSemTake: return "rtu.semtake";
      case Op::kSemGive: return "rtu.semgive";
      case Op::kInvalid: return "<invalid>";
    }
    return "<unknown>";
}

InsnClass
classOf(Op op)
{
    switch (op) {
      case Op::kJal:
      case Op::kJalr:
        return InsnClass::kJump;
      case Op::kBeq: case Op::kBne: case Op::kBlt:
      case Op::kBge: case Op::kBltu: case Op::kBgeu:
        return InsnClass::kBranch;
      case Op::kLb: case Op::kLh: case Op::kLw:
      case Op::kLbu: case Op::kLhu:
        return InsnClass::kLoad;
      case Op::kSb: case Op::kSh: case Op::kSw:
        return InsnClass::kStore;
      case Op::kMul: case Op::kMulh: case Op::kMulhsu: case Op::kMulhu:
        return InsnClass::kMul;
      case Op::kDiv: case Op::kDivu: case Op::kRem: case Op::kRemu:
        return InsnClass::kDiv;
      case Op::kCsrrw: case Op::kCsrrs: case Op::kCsrrc:
      case Op::kCsrrwi: case Op::kCsrrsi: case Op::kCsrrci:
        return InsnClass::kCsr;
      case Op::kFence: case Op::kEcall: case Op::kEbreak:
      case Op::kMret: case Op::kWfi:
        return InsnClass::kSystem;
      case Op::kSetContextId: case Op::kGetHwSched: case Op::kAddReady:
      case Op::kAddDelay: case Op::kRmTask: case Op::kSwitchRf:
      case Op::kSemTake: case Op::kSemGive:
        return InsnClass::kCustom;
      default:
        return InsnClass::kAlu;
    }
}

bool
isCustomOp(Op op)
{
    return classOf(op) == InsnClass::kCustom;
}

bool
readsRs1(Op op)
{
    switch (op) {
      case Op::kLui: case Op::kAuipc: case Op::kJal:
      case Op::kFence: case Op::kEcall: case Op::kEbreak:
      case Op::kMret: case Op::kWfi:
      case Op::kCsrrwi: case Op::kCsrrsi: case Op::kCsrrci:
      case Op::kGetHwSched: case Op::kSwitchRf:
      case Op::kInvalid:
        return false;
      default:
        return true;
    }
}

bool
readsRs2(Op op)
{
    switch (op) {
      case Op::kBeq: case Op::kBne: case Op::kBlt:
      case Op::kBge: case Op::kBltu: case Op::kBgeu:
      case Op::kSb: case Op::kSh: case Op::kSw:
      case Op::kAdd: case Op::kSub: case Op::kSll: case Op::kSlt:
      case Op::kSltu: case Op::kXor: case Op::kSrl: case Op::kSra:
      case Op::kOr: case Op::kAnd:
      case Op::kMul: case Op::kMulh: case Op::kMulhsu: case Op::kMulhu:
      case Op::kDiv: case Op::kDivu: case Op::kRem: case Op::kRemu:
      case Op::kAddReady: case Op::kAddDelay:
        return true;
      default:
        return false;
    }
}

bool
writesRd(Op op)
{
    switch (op) {
      case Op::kBeq: case Op::kBne: case Op::kBlt:
      case Op::kBge: case Op::kBltu: case Op::kBgeu:
      case Op::kSb: case Op::kSh: case Op::kSw:
      case Op::kFence: case Op::kEcall: case Op::kEbreak:
      case Op::kMret: case Op::kWfi:
      case Op::kSetContextId: case Op::kAddReady: case Op::kAddDelay:
      case Op::kRmTask: case Op::kSwitchRf:
      case Op::kInvalid:
        return false;
      default:
        return true;
    }
}

} // namespace rtu
