/**
 * @file
 * Programmatic RV32IM assembler.
 *
 * The guest kernel and workloads are written against this builder API:
 * one method per mnemonic, string labels with forward references,
 * pseudo-instructions (li/la/call/ret/j/mv/nop), data-section symbols,
 * and WCET loop-bound annotations.
 */

#ifndef RTU_ASM_ASSEMBLER_HH
#define RTU_ASM_ASSEMBLER_HH

#include <map>
#include <string>
#include <vector>

#include "common/types.hh"
#include "insn.hh"
#include "program.hh"

namespace rtu {

class Assembler
{
  public:
    Assembler(Addr text_base, Addr data_base);

    // ---- labels & layout -------------------------------------------
    /** Bind @p name to the current text position. */
    void label(const std::string &name);

    /** Begin/end a named function (debug metadata + a label). */
    void fnBegin(const std::string &name);
    void fnEnd();

    /** Current text address (address of the next emitted insn). */
    Addr here() const;

    /**
     * Annotate the next emitted control-flow instruction (a loop's
     * back edge) with the maximum number of times it may execute.
     * For a top-tested loop whose body runs at most N times this is
     * N; for a bottom-tested loop it is N - 1. Consumed by the WCET
     * analyzer.
     */
    void loopBound(unsigned bound);

    // ---- data section ----------------------------------------------
    /** Reserve one word, optionally named; returns its address. */
    Addr dataWord(const std::string &name, Word init = 0);

    /** Reserve @p count words; returns base address. */
    Addr dataArray(const std::string &name, size_t count, Word init = 0);

    /** Align the data cursor to @p align bytes (power of two). */
    void dataAlign(Addr align);

    // ---- RV32I ------------------------------------------------------
    void lui(Reg rd, SWord imm20);
    void auipc(Reg rd, SWord imm20);
    void jal(Reg rd, const std::string &target);
    void jalr(Reg rd, Reg rs1, SWord imm);
    void beq(Reg rs1, Reg rs2, const std::string &target);
    void bne(Reg rs1, Reg rs2, const std::string &target);
    void blt(Reg rs1, Reg rs2, const std::string &target);
    void bge(Reg rs1, Reg rs2, const std::string &target);
    void bltu(Reg rs1, Reg rs2, const std::string &target);
    void bgeu(Reg rs1, Reg rs2, const std::string &target);
    void lb(Reg rd, SWord off, Reg base);
    void lh(Reg rd, SWord off, Reg base);
    void lw(Reg rd, SWord off, Reg base);
    void lbu(Reg rd, SWord off, Reg base);
    void lhu(Reg rd, SWord off, Reg base);
    void sb(Reg rs2, SWord off, Reg base);
    void sh(Reg rs2, SWord off, Reg base);
    void sw(Reg rs2, SWord off, Reg base);
    void addi(Reg rd, Reg rs1, SWord imm);
    void slti(Reg rd, Reg rs1, SWord imm);
    void sltiu(Reg rd, Reg rs1, SWord imm);
    void xori(Reg rd, Reg rs1, SWord imm);
    void ori(Reg rd, Reg rs1, SWord imm);
    void andi(Reg rd, Reg rs1, SWord imm);
    void slli(Reg rd, Reg rs1, SWord shamt);
    void srli(Reg rd, Reg rs1, SWord shamt);
    void srai(Reg rd, Reg rs1, SWord shamt);
    void add(Reg rd, Reg rs1, Reg rs2);
    void sub(Reg rd, Reg rs1, Reg rs2);
    void sll(Reg rd, Reg rs1, Reg rs2);
    void slt(Reg rd, Reg rs1, Reg rs2);
    void sltu(Reg rd, Reg rs1, Reg rs2);
    void xor_(Reg rd, Reg rs1, Reg rs2);
    void srl(Reg rd, Reg rs1, Reg rs2);
    void sra(Reg rd, Reg rs1, Reg rs2);
    void or_(Reg rd, Reg rs1, Reg rs2);
    void and_(Reg rd, Reg rs1, Reg rs2);
    void fence();
    void ecall();
    void ebreak();
    void mret();
    void wfi();

    // ---- Zicsr ------------------------------------------------------
    void csrrw(Reg rd, std::uint16_t csr, Reg rs1);
    void csrrs(Reg rd, std::uint16_t csr, Reg rs1);
    void csrrc(Reg rd, std::uint16_t csr, Reg rs1);
    void csrrwi(Reg rd, std::uint16_t csr, Word uimm5);
    void csrrsi(Reg rd, std::uint16_t csr, Word uimm5);
    void csrrci(Reg rd, std::uint16_t csr, Word uimm5);

    // ---- RV32M ------------------------------------------------------
    void mul(Reg rd, Reg rs1, Reg rs2);
    void mulh(Reg rd, Reg rs1, Reg rs2);
    void mulhsu(Reg rd, Reg rs1, Reg rs2);
    void mulhu(Reg rd, Reg rs1, Reg rs2);
    void div(Reg rd, Reg rs1, Reg rs2);
    void divu(Reg rd, Reg rs1, Reg rs2);
    void rem(Reg rd, Reg rs1, Reg rs2);
    void remu(Reg rd, Reg rs1, Reg rs2);

    // ---- RTOSUnit custom instructions (Table 1) ----------------------
    void rtuSetContextId(Reg rs1_task_id);
    void rtuGetHwSched(Reg rd);
    void rtuAddReady(Reg rs1_task_id, Reg rs2_priority);
    void rtuAddDelay(Reg rs1_priority, Reg rs2_ticks);
    void rtuRmTask(Reg rs1_task_id);
    void rtuSwitchRf();
    void rtuSemTake(Reg rd, Reg rs1_sem_id);
    void rtuSemGive(Reg rd, Reg rs1_sem_id);

    // ---- pseudo-instructions ----------------------------------------
    void nop();
    void mv(Reg rd, Reg rs);
    void li(Reg rd, SWord value);              ///< 1 or 2 insns
    void la(Reg rd, const std::string &sym);   ///< always lui+addi
    void j(const std::string &target);         ///< jal zero
    void call(const std::string &target);      ///< jal ra
    void ret();                                ///< jalr zero, ra, 0
    void csrr(Reg rd, std::uint16_t csr);      ///< csrrs rd, csr, x0
    void csrw(std::uint16_t csr, Reg rs);      ///< csrrw x0, csr, rs
    void beqz(Reg rs, const std::string &target);
    void bnez(Reg rs, const std::string &target);

    // ---- finalize ----------------------------------------------------
    /** Resolve all fixups and produce the image. Panics on undefined
     *  labels or out-of-range branches. */
    Program finish();

    size_t textSize() const { return text_.size(); }

  private:
    enum class FixupKind { kBranch, kJal, kLuiHi, kAddiLo };

    struct Fixup
    {
        size_t index;       ///< index into text_
        FixupKind kind;
        std::string target;
    };

    void emit(Word insn);
    Addr addrOfIndex(size_t index) const;

    Addr textBase_;
    Addr dataBase_;
    std::vector<Word> text_;
    std::vector<Word> data_;
    std::map<std::string, Addr> symbols_;
    std::vector<Fixup> fixups_;
    std::map<Addr, unsigned> loopBounds_;
    std::map<std::string, std::pair<Addr, Addr>> functions_;
    std::string currentFn_;
    Addr currentFnStart_ = 0;
    unsigned pendingLoopBound_ = 0;
    bool hasPendingLoopBound_ = false;
    bool finished_ = false;
};

} // namespace rtu

#endif // RTU_ASM_ASSEMBLER_HH
