#include "program.hh"

#include "common/logging.hh"

namespace rtu {

Addr
Program::symbol(const std::string &name) const
{
    auto it = symbols.find(name);
    if (it == symbols.end())
        panic("undefined symbol '%s'", name.c_str());
    return it->second;
}

std::string
Program::functionAt(Addr addr) const
{
    for (const auto &[name, range] : functions) {
        if (addr >= range.first && addr < range.second)
            return name;
    }
    return "";
}

} // namespace rtu
