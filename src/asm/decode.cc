#include "decode.hh"

#include "common/bitutil.hh"

namespace rtu {

namespace {

SWord
immI(Word raw)
{
    return sext(bits(raw, 31, 20), 12);
}

SWord
immS(Word raw)
{
    return sext((bits(raw, 31, 25) << 5) | bits(raw, 11, 7), 12);
}

SWord
immB(Word raw)
{
    const Word v = (bit(raw, 31) << 12) | (bit(raw, 7) << 11) |
                   (bits(raw, 30, 25) << 5) | (bits(raw, 11, 8) << 1);
    return sext(v, 13);
}

SWord
immU(Word raw)
{
    // Keep the raw [31:12] field; the executor shifts it into place.
    return static_cast<SWord>(bits(raw, 31, 12));
}

SWord
immJ(Word raw)
{
    const Word v = (bit(raw, 31) << 20) | (bits(raw, 19, 12) << 12) |
                   (bit(raw, 20) << 11) | (bits(raw, 30, 21) << 1);
    return sext(v, 21);
}

DecodedInsn
decodeFields(Word raw)
{
    DecodedInsn d;
    d.raw = raw;
    d.rd = static_cast<RegIndex>(bits(raw, 11, 7));
    d.rs1 = static_cast<RegIndex>(bits(raw, 19, 15));
    d.rs2 = static_cast<RegIndex>(bits(raw, 24, 20));
    const Word opcode = bits(raw, 6, 0);
    const Word funct3 = bits(raw, 14, 12);
    const Word funct7 = bits(raw, 31, 25);

    switch (opcode) {
      case 0x37:
        d.op = Op::kLui;
        d.imm = immU(raw);
        return d;
      case 0x17:
        d.op = Op::kAuipc;
        d.imm = immU(raw);
        return d;
      case 0x6F:
        d.op = Op::kJal;
        d.imm = immJ(raw);
        return d;
      case 0x67:
        if (funct3 != 0)
            break;
        d.op = Op::kJalr;
        d.imm = immI(raw);
        return d;
      case 0x63:
        d.imm = immB(raw);
        switch (funct3) {
          case 0: d.op = Op::kBeq; return d;
          case 1: d.op = Op::kBne; return d;
          case 4: d.op = Op::kBlt; return d;
          case 5: d.op = Op::kBge; return d;
          case 6: d.op = Op::kBltu; return d;
          case 7: d.op = Op::kBgeu; return d;
          default: break;
        }
        break;
      case 0x03:
        d.imm = immI(raw);
        switch (funct3) {
          case 0: d.op = Op::kLb; return d;
          case 1: d.op = Op::kLh; return d;
          case 2: d.op = Op::kLw; return d;
          case 4: d.op = Op::kLbu; return d;
          case 5: d.op = Op::kLhu; return d;
          default: break;
        }
        break;
      case 0x23:
        d.imm = immS(raw);
        switch (funct3) {
          case 0: d.op = Op::kSb; return d;
          case 1: d.op = Op::kSh; return d;
          case 2: d.op = Op::kSw; return d;
          default: break;
        }
        break;
      case 0x13:
        d.imm = immI(raw);
        switch (funct3) {
          case 0: d.op = Op::kAddi; return d;
          case 2: d.op = Op::kSlti; return d;
          case 3: d.op = Op::kSltiu; return d;
          case 4: d.op = Op::kXori; return d;
          case 6: d.op = Op::kOri; return d;
          case 7: d.op = Op::kAndi; return d;
          case 1:
            if (funct7 == 0x00) {
                d.op = Op::kSlli;
                d.imm = static_cast<SWord>(d.rs2);
                return d;
            }
            break;
          case 5:
            if (funct7 == 0x00) {
                d.op = Op::kSrli;
                d.imm = static_cast<SWord>(d.rs2);
                return d;
            }
            if (funct7 == 0x20) {
                d.op = Op::kSrai;
                d.imm = static_cast<SWord>(d.rs2);
                return d;
            }
            break;
          default:
            break;
        }
        break;
      case 0x33:
        if (funct7 == 0x00) {
            switch (funct3) {
              case 0: d.op = Op::kAdd; return d;
              case 1: d.op = Op::kSll; return d;
              case 2: d.op = Op::kSlt; return d;
              case 3: d.op = Op::kSltu; return d;
              case 4: d.op = Op::kXor; return d;
              case 5: d.op = Op::kSrl; return d;
              case 6: d.op = Op::kOr; return d;
              case 7: d.op = Op::kAnd; return d;
            }
        } else if (funct7 == 0x20) {
            if (funct3 == 0) { d.op = Op::kSub; return d; }
            if (funct3 == 5) { d.op = Op::kSra; return d; }
        } else if (funct7 == 0x01) {
            switch (funct3) {
              case 0: d.op = Op::kMul; return d;
              case 1: d.op = Op::kMulh; return d;
              case 2: d.op = Op::kMulhsu; return d;
              case 3: d.op = Op::kMulhu; return d;
              case 4: d.op = Op::kDiv; return d;
              case 5: d.op = Op::kDivu; return d;
              case 6: d.op = Op::kRem; return d;
              case 7: d.op = Op::kRemu; return d;
            }
        }
        break;
      case 0x0F:
        d.op = Op::kFence;
        return d;
      case 0x73:
        if (funct3 == 0) {
            if (raw == 0x00000073) { d.op = Op::kEcall; return d; }
            if (raw == 0x00100073) { d.op = Op::kEbreak; return d; }
            if (raw == 0x30200073) { d.op = Op::kMret; return d; }
            if (raw == 0x10500073) { d.op = Op::kWfi; return d; }
            break;
        }
        d.csr = static_cast<std::uint16_t>(bits(raw, 31, 20));
        switch (funct3) {
          case 1: d.op = Op::kCsrrw; return d;
          case 2: d.op = Op::kCsrrs; return d;
          case 3: d.op = Op::kCsrrc; return d;
          case 5:
            d.op = Op::kCsrrwi;
            d.imm = static_cast<SWord>(d.rs1);
            return d;
          case 6:
            d.op = Op::kCsrrsi;
            d.imm = static_cast<SWord>(d.rs1);
            return d;
          case 7:
            d.op = Op::kCsrrci;
            d.imm = static_cast<SWord>(d.rs1);
            return d;
          default:
            break;
        }
        break;
      case 0x0B:
        // RTOSUnit custom-0 space (Table 1).
        if (funct3 != 0)
            break;
        switch (funct7) {
          case 0x00: d.op = Op::kSetContextId; return d;
          case 0x01: d.op = Op::kGetHwSched; return d;
          case 0x02: d.op = Op::kAddReady; return d;
          case 0x03: d.op = Op::kAddDelay; return d;
          case 0x04: d.op = Op::kRmTask; return d;
          case 0x05: d.op = Op::kSwitchRf; return d;
          case 0x06: d.op = Op::kSemTake; return d;
          case 0x07: d.op = Op::kSemGive; return d;
          default: break;
        }
        break;
      default:
        break;
    }
    d.op = Op::kInvalid;
    return d;
}

} // namespace

DecodedInsn
decode(Word raw)
{
    DecodedInsn d = decodeFields(raw);
    // Pre-decode the control fields once so the timing models consume
    // plain loads instead of per-fetch classification switches.
    d.cls = classOf(d.op);
    d.useRs1 = readsRs1(d.op);
    d.useRs2 = readsRs2(d.op);
    d.hasRd = writesRd(d.op);
    return d;
}

} // namespace rtu
