/**
 * @file
 * Text-assembly front end: parse a small RV32IM assembly dialect into
 * the programmatic Assembler, so guest code can be written as plain
 * strings instead of builder calls.
 *
 * Supported syntax (one statement per line, '#' comments):
 *   label:                       — bind a label
 *   addi a0, a1, -4              — every Op the simulator knows
 *   lw a0, 16(sp)  /  sw a0, 0(t1)
 *   beq a0, a1, target           — branch/jump targets are labels
 *   csrr t0, mstatus  /  csrw mscratch, t0  /  csrrwi t0, mtvec, 3
 *   li a0, 0xDEAD  /  la a0, symbol  /  j loop  /  call fn  /  ret
 *   rtu.getsched t0              — RTOSUnit custom instructions
 *   .word name value             — data word
 *   .array name count            — zero-initialized data words
 *   .loopbound N                 — WCET annotation for the next branch
 */

#ifndef RTU_ASM_TEXT_ASM_HH
#define RTU_ASM_TEXT_ASM_HH

#include <string>

#include "assembler.hh"

namespace rtu {

/**
 * Assemble @p source into @p target. Fatal on syntax errors, with the
 * line number in the message (user-facing input).
 */
void assembleText(Assembler &target, const std::string &source);

/** Convenience: assemble a standalone program. */
Program assembleProgram(const std::string &source,
                        Addr text_base = 0x0,
                        Addr data_base = 0x1000'0000);

} // namespace rtu

#endif // RTU_ASM_TEXT_ASM_HH
