/**
 * @file
 * RV32IM + Zicsr + RTOSUnit custom-0 instruction set definition.
 *
 * The same definition backs the assembler (encode), the cores
 * (decode + execute), the disassembler (traces) and the WCET analyzer
 * (instruction classification).
 */

#ifndef RTU_ASM_INSN_HH
#define RTU_ASM_INSN_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/types.hh"

namespace rtu {

/** Architectural register names (RISC-V ABI). */
enum Reg : RegIndex {
    Zero = 0,
    RA = 1,
    SP = 2,
    GP = 3,
    TP = 4,
    T0 = 5, T1 = 6, T2 = 7,
    S0 = 8, S1 = 9,
    A0 = 10, A1 = 11, A2 = 12, A3 = 13,
    A4 = 14, A5 = 15, A6 = 16, A7 = 17,
    S2 = 18, S3 = 19, S4 = 20, S5 = 21, S6 = 22,
    S7 = 23, S8 = 24, S9 = 25, S10 = 26, S11 = 27,
    T3 = 28, T4 = 29, T5 = 30, T6 = 31,
};

/** ABI register name, e.g. "a0". */
const char *regName(RegIndex reg);

/** Every instruction the simulator understands. */
enum class Op : std::uint8_t {
    // RV32I
    kLui, kAuipc, kJal, kJalr,
    kBeq, kBne, kBlt, kBge, kBltu, kBgeu,
    kLb, kLh, kLw, kLbu, kLhu,
    kSb, kSh, kSw,
    kAddi, kSlti, kSltiu, kXori, kOri, kAndi,
    kSlli, kSrli, kSrai,
    kAdd, kSub, kSll, kSlt, kSltu, kXor, kSrl, kSra, kOr, kAnd,
    kFence, kEcall, kEbreak, kMret, kWfi,
    // Zicsr
    kCsrrw, kCsrrs, kCsrrc, kCsrrwi, kCsrrsi, kCsrrci,
    // RV32M
    kMul, kMulh, kMulhsu, kMulhu, kDiv, kDivu, kRem, kRemu,
    // RTOSUnit custom-0 instructions (Table 1 of the paper)
    kSetContextId,  ///< latch next task id for the store/restore FSMs
    kGetHwSched,    ///< pop head of hardware ready list (rd = task id)
    kAddReady,      ///< insert task (rs1 = id) with priority (rs2)
    kAddDelay,      ///< delay running task: rs1 = priority, rs2 = ticks
    kRmTask,        ///< remove task (rs1 = id) from hardware lists
    kSwitchRf,      ///< switch core back to the application register file
    // Hardware synchronization extension (the paper's future work,
    // Section 7): counting semaphores managed by the RTOSUnit.
    kSemTake,       ///< rs1 = sem id; rd = 1 acquired, 0 blocked
    kSemGive,       ///< rs1 = sem id; rd = 1 if a preempting task woke
    kInvalid,
};

/** Dense opcode count (indexes the executor's dispatch table). */
constexpr std::size_t kNumOps = static_cast<std::size_t>(Op::kInvalid) + 1;

/** Coarse classes used by timing models and the WCET analyzer. */
enum class InsnClass : std::uint8_t {
    kAlu,      ///< integer ALU, LUI/AUIPC
    kMul,
    kDiv,
    kLoad,
    kStore,
    kBranch,   ///< conditional branch
    kJump,     ///< JAL / JALR
    kCsr,
    kSystem,   ///< ECALL/EBREAK/MRET/WFI/FENCE
    kCustom,   ///< RTOSUnit custom instruction
};

/** One decoded instruction. Immediates are already sign-extended. */
struct DecodedInsn
{
    Op op = Op::kInvalid;
    RegIndex rd = 0;
    RegIndex rs1 = 0;
    RegIndex rs2 = 0;
    SWord imm = 0;        ///< sign-extended immediate (branch/jump offsets)
    std::uint16_t csr = 0; ///< CSR address for Zicsr ops
    Word raw = 0;          ///< original encoding

    /** Pre-decoded control fields, filled by decode(). Pure functions
     *  of op (classOf/readsRs1/readsRs2/writesRd) stored in the
     *  decoded form so the timing models read a field instead of
     *  re-running the classification switches on every fetch. */
    InsnClass cls = InsnClass::kAlu;  ///< classOf(kInvalid)
    bool useRs1 = false;
    bool useRs2 = false;
    bool hasRd = false;

    bool valid() const { return op != Op::kInvalid; }
};

/** Mnemonic, e.g. "addi". */
const char *opName(Op op);

/** Timing class of an opcode. */
InsnClass classOf(Op op);

/** True for the six RTOSUnit custom instructions. */
bool isCustomOp(Op op);

/** True if the opcode reads rs1 / rs2 / writes rd. */
bool readsRs1(Op op);
bool readsRs2(Op op);
bool writesRd(Op op);

/** Well-known CSR addresses (Zicsr machine mode subset). */
namespace csr {
constexpr std::uint16_t kMstatus = 0x300;
constexpr std::uint16_t kMie = 0x304;
constexpr std::uint16_t kMtvec = 0x305;
constexpr std::uint16_t kMscratch = 0x340;
constexpr std::uint16_t kMepc = 0x341;
constexpr std::uint16_t kMcause = 0x342;
constexpr std::uint16_t kMtval = 0x343;
constexpr std::uint16_t kMip = 0x344;
constexpr std::uint16_t kMcycle = 0xB00;
constexpr std::uint16_t kMcycleh = 0xB80;
constexpr std::uint16_t kMhartid = 0xF14;
} // namespace csr

/** mstatus bit positions. */
namespace mstatus {
constexpr Word kMie = 1u << 3;
constexpr Word kMpie = 1u << 7;
constexpr Word kMppMask = 3u << 11;
} // namespace mstatus

/** mip/mie bit positions (machine-level). */
namespace irq {
constexpr Word kMsi = 1u << 3;   ///< machine software interrupt
constexpr Word kMti = 1u << 7;   ///< machine timer interrupt
constexpr Word kMei = 1u << 11;  ///< machine external interrupt
} // namespace irq

/** mcause values for interrupts (bit 31 set). */
namespace mcause {
constexpr Word kInterruptBit = 1u << 31;
constexpr Word kMachineSoftware = kInterruptBit | 3;
constexpr Word kMachineTimer = kInterruptBit | 7;
constexpr Word kMachineExternal = kInterruptBit | 11;
constexpr Word kEcallM = 11;  ///< synchronous: environment call from M
constexpr Word kBreakpoint = 3;
constexpr Word kIllegalInsn = 2;
} // namespace mcause

} // namespace rtu

#endif // RTU_ASM_INSN_HH
