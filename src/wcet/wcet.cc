#include "wcet.hh"

#include "asm/decode.hh"
#include "common/logging.hh"
#include "rtosunit/rtosunit.hh"

namespace rtu {

namespace {

/** Worst-case stall of GET_HW_SCHED: a timer decrement re-sort, a
 *  full list of expiring transfers, and the ready-list re-sort. */
unsigned
worstGetHwSchedStall(unsigned list_slots)
{
    return 3 * list_slots;
}

/** Worst-case SWITCH_RF stall: the full store drain. */
constexpr unsigned kWorstSwitchRfStall = kCtxWords;

constexpr unsigned kMaxDepth = 64;

} // namespace

WcetAnalyzer::WcetAnalyzer(const Program &program,
                           const RtosUnitConfig &unit,
                           const Cv32e40pParams &params)
    : program_(program), unit_(unit), params_(params)
{
}

DecodedInsn
WcetAnalyzer::insnAt(Addr pc) const
{
    rtu_assert(pc >= program_.textBase && pc < program_.textEnd(),
               "WCET walk left the text section at 0x%08x", pc);
    return decode(program_.text[(pc - program_.textBase) / 4]);
}

WcetAnalyzer::PathCost
WcetAnalyzer::costOf(const DecodedInsn &insn) const
{
    PathCost c;
    c.insns = 1;
    switch (classOf(insn.op)) {
      case InsnClass::kJump:
        c.cycles = params_.jumpCycles;
        break;
      case InsnClass::kBranch:
        c.cycles = params_.takenBranchCycles;  // pessimistic
        break;
      case InsnClass::kDiv:
        c.cycles = params_.divBaseCycles + 32;
        break;
      case InsnClass::kLoad:
        // Pessimistic load-use assumption.
        c.cycles = 1 + params_.loadUseStall;
        c.memOps = 1;
        break;
      case InsnClass::kStore:
        c.cycles = 1;
        c.memOps = 1;
        break;
      case InsnClass::kSystem:
        c.cycles = insn.op == Op::kMret ? params_.mretCycles : 1;
        break;
      case InsnClass::kCustom:
        c.cycles = 1;
        if (insn.op == Op::kGetHwSched)
            c.cycles += worstGetHwSchedStall(unit_.listSlots);
        else if (insn.op == Op::kSwitchRf && unit_.store)
            c.cycles += kWorstSwitchRfStall;
        break;
      default:
        c.cycles = 1;
        break;
    }
    return c;
}

WcetAnalyzer::PathCost
WcetAnalyzer::worstFrom(Addr pc, std::map<Addr, unsigned> budgets,
                        unsigned depth)
{
    rtu_assert(depth < kMaxDepth, "WCET recursion too deep at 0x%08x",
               pc);
    PathCost total;
    while (true) {
        const DecodedInsn insn = insnAt(pc);
        const PathCost step = costOf(insn);

        if (insn.op == Op::kMret) {
            total = total.plus(step);
            return total;
        }
        if (insn.op == Op::kJalr && insn.rd == Zero && insn.rs1 == RA) {
            // Function return.
            total = total.plus(step);
            return total;
        }
        if (insn.op == Op::kJal) {
            const Addr target = pc + static_cast<Word>(insn.imm);
            if (insn.rd == RA) {
                // Call: add the callee's worst path, continue after.
                total = total.plus(step);
                auto cached = functionCache_.find(target);
                PathCost callee;
                if (cached != functionCache_.end()) {
                    callee = cached->second;
                } else {
                    callee = worstFrom(target, {}, depth + 1);
                    functionCache_[target] = callee;
                }
                total = total.plus(callee);
                pc += 4;
                continue;
            }
            // Plain jump; bounded back edges consume loop budget.
            auto bound = program_.loopBounds.find(pc);
            if (bound != program_.loopBounds.end()) {
                // The annotation bounds how often this back edge may
                // execute (see Assembler::loopBound).
                auto [it, inserted] =
                    budgets.emplace(pc, bound->second);
                (void)inserted;
                if (it->second == 0) {
                    // Budget exhausted: this continuation is
                    // infeasible; the bounded-exit path (explored at
                    // the loop's conditional branch) dominates.
                    return total;
                }
                --it->second;
                total = total.plus(step);
                pc = target;
                continue;
            }
            if (target <= pc) {
                // Unannotated backward jumps only occur on terminal
                // error paths (k_fatal_sync's self-loop); they end
                // the walk rather than bounding the WCET.
                return total;
            }
            total = total.plus(step);
            pc = target;
            continue;
        }
        if (classOf(insn.op) == InsnClass::kBranch) {
            // Explore both successors; keep the worst.
            total = total.plus(step);
            const Addr taken = pc + static_cast<Word>(insn.imm);
            rtu_assert(taken > pc || program_.loopBounds.count(pc),
                       "unannotated backward branch at 0x%08x", pc);
            PathCost t = worstFrom(taken, budgets, depth + 1);
            PathCost f = worstFrom(pc + 4, budgets, depth + 1);
            t.takeMax(f);
            return total.plus(t);
        }
        if (insn.op == Op::kJalr) {
            // Indirect jumps other than returns do not appear in
            // generated kernel code.
            panic("indirect jump in WCET path at 0x%08x", pc);
        }
        if (insn.op == Op::kWfi)
            return total;  // the idle task is never an ISR path

        total = total.plus(step);
        pc += 4;
    }
}

std::uint64_t
WcetAnalyzer::analyzeFunction(const std::string &symbol)
{
    return worstFrom(program_.symbol(symbol), {}, 0).cycles;
}

WcetResult
WcetAnalyzer::analyzeIsr()
{
    const PathCost sw = worstFrom(program_.symbol("k_isr"), {}, 0);

    WcetResult res;
    res.pathInsns = sw.insns;
    res.pathMemOps = sw.memOps;
    res.softwareCycles = params_.trapEntryCycles + sw.cycles;

    // Decoupled hardware path: the FSMs transfer up to 31 + 31 words
    // on the shared port, stalled once per core memory access, and
    // mret cannot complete earlier (paper Section 6.2).
    std::uint64_t fsm_words = 0;
    if (unit_.store)
        fsm_words += kCtxWords;
    if (unit_.load || unit_.preload)
        fsm_words += kCtxWords;
    if (fsm_words > 0) {
        res.hardwareCycles = params_.trapEntryCycles + fsm_words +
                             sw.memOps + params_.mretCycles;
    }
    res.totalCycles = std::max(res.softwareCycles, res.hardwareCycles);
    return res;
}

} // namespace rtu
