#include "wcet.hh"

#include "asm/disasm.hh"
#include "common/logging.hh"
#include "rtosunit/rtosunit.hh"

namespace rtu {

namespace {

/** Worst-case stall of GET_HW_SCHED: a timer decrement re-sort, a
 *  full list of expiring transfers, and the ready-list re-sort. */
unsigned
worstGetHwSchedStall(unsigned list_slots)
{
    return 3 * list_slots;
}

/** Worst-case SWITCH_RF stall: the full store drain. */
constexpr unsigned kWorstSwitchRfStall = kCtxWords;

/** Depth cap for the recursive walk. Budgeted backward branches
 *  recurse once per iteration, so this must clear the largest useful
 *  inferred bound plus call/branch nesting; it only exists to catch
 *  runaway recursion on broken inputs. */
constexpr unsigned kMaxDepth = 512;

} // namespace

WcetAnalyzer::WcetAnalyzer(const Program &program,
                           const RtosUnitConfig &unit,
                           const Cv32e40pParams &params)
    : program_(program), unit_(unit), params_(params), cfg_(program)
{
}

void
WcetAnalyzer::reportOnce(const std::string &code, Addr pc,
                         const std::string &message)
{
    if (!reported_.insert({code, pc}).second)
        return;
    Diagnostic d;
    d.severity = Severity::kError;
    d.code = code;
    d.pc = pc;
    d.hasPc = true;
    d.function = program_.functionAt(pc);
    d.insn = disassemble(cfg_.insnAt(pc).raw);
    d.message = message;
    diags_.push_back(std::move(d));
}

void
WcetAnalyzer::setFacts(AbsintFacts facts)
{
    rtu_assert(functionCache_.empty(),
               "setFacts() after analysis started");
    facts_ = std::move(facts);
}

std::optional<unsigned>
WcetAnalyzer::backEdgeBudget(Addr pc) const
{
    std::optional<unsigned> budget;
    if (cfg_.hasLoopBound(pc))
        budget = cfg_.loopBound(pc);
    auto it = facts_.inferredBounds.find(pc);
    if (it != facts_.inferredBounds.end() &&
        (!budget || it->second < *budget))
        budget = it->second;
    return budget;
}

WcetAnalyzer::PathCost
WcetAnalyzer::costOf(const DecodedInsn &insn) const
{
    PathCost c;
    c.insns = 1;
    switch (classOf(insn.op)) {
      case InsnClass::kJump:
        c.cycles = params_.jumpCycles;
        break;
      case InsnClass::kBranch:
        c.cycles = params_.takenBranchCycles;  // pessimistic
        break;
      case InsnClass::kDiv:
        c.cycles = params_.divBaseCycles + 32;
        break;
      case InsnClass::kLoad:
        // Pessimistic load-use assumption.
        c.cycles = 1 + params_.loadUseStall;
        c.memOps = 1;
        break;
      case InsnClass::kStore:
        c.cycles = 1;
        c.memOps = 1;
        break;
      case InsnClass::kSystem:
        c.cycles = insn.op == Op::kMret ? params_.mretCycles : 1;
        break;
      case InsnClass::kCustom:
        c.cycles = 1;
        if (insn.op == Op::kGetHwSched)
            c.cycles += worstGetHwSchedStall(unit_.listSlots);
        else if (insn.op == Op::kSwitchRf && unit_.store)
            c.cycles += kWorstSwitchRfStall;
        break;
      default:
        c.cycles = 1;
        break;
    }
    return c;
}

WcetAnalyzer::PathCost
WcetAnalyzer::worstFrom(Addr pc, std::map<Addr, unsigned> budgets,
                        unsigned depth)
{
    rtu_assert(depth < kMaxDepth, "WCET recursion too deep at 0x%08x",
               pc);
    PathCost total;
    while (true) {
        rtu_assert(cfg_.contains(pc),
                   "WCET walk left the text section at 0x%08x", pc);
        const BasicBlock *bb = cfg_.blockContaining(pc);

        // Straight-line run up to the block's last instruction. `wfi`
        // parks the core: the idle task is never an ISR path, so the
        // walk ends without charging it.
        while (pc != bb->termPc()) {
            const DecodedInsn &d = cfg_.insnAt(pc);
            if (d.op == Op::kWfi)
                return total;
            total = total.plus(costOf(d));
            pc += 4;
        }

        const DecodedInsn &insn = cfg_.insnAt(pc);
        const PathCost step = costOf(insn);

        switch (bb->term) {
          case TermKind::kTrapReturn:
          case TermKind::kReturn:
            return total.plus(step);

          case TermKind::kCall: {
            // Call: add the callee's worst path, continue after.
            total = total.plus(step);
            const Addr target = bb->takenTarget;
            auto cached = functionCache_.find(target);
            PathCost callee;
            if (cached != functionCache_.end()) {
                callee = cached->second;
            } else {
                callee = worstFrom(target, {}, depth + 1);
                functionCache_[target] = callee;
            }
            total = total.plus(callee);
            pc += 4;
            continue;
          }

          case TermKind::kJump: {
            const Addr target = bb->takenTarget;
            // Bounded back edges consume loop budget: the tighter of
            // the manual annotation and the inferred bound.
            if (const auto budget = backEdgeBudget(pc)) {
                // The bound caps how often this back edge may
                // execute (see Assembler::loopBound).
                auto [it, inserted] = budgets.emplace(pc, *budget);
                (void)inserted;
                if (it->second == 0) {
                    // Budget exhausted: this continuation is
                    // infeasible; the bounded-exit path (explored at
                    // the loop's conditional branch) dominates.
                    return total;
                }
                --it->second;
                total = total.plus(step);
                pc = target;
                continue;
            }
            if (target <= pc) {
                // Unannotated backward jumps only occur on terminal
                // error paths (k_fatal_sync's self-loop); they end
                // the walk rather than bounding the WCET.
                return total;
            }
            total = total.plus(step);
            pc = target;
            continue;
          }

          case TermKind::kBranch: {
            // Explore the feasible successors; keep the worst.
            total = total.plus(step);
            const Addr taken = bb->takenTarget;
            const bool takenDead = facts_.infeasibleTaken.count(pc) > 0;
            const bool fallDead = facts_.infeasibleFall.count(pc) > 0;
            if (takenDead && fallDead)
                return total;  // unreachable terminator
            const auto budget = backEdgeBudget(pc);
            if (taken <= pc && !budget) {
                // Formerly a hard assert: an unannotated backward
                // branch makes the loop unbounded. Report it and
                // treat the taken edge as infeasible so callers see
                // a result plus a diagnostic instead of an abort.
                if (!takenDead) {
                    reportOnce("wcet-unannotated-back-edge", pc,
                               "unannotated backward branch: taken "
                               "edge treated as infeasible, WCET is "
                               "a lower bound");
                }
                return total.plus(
                    worstFrom(pc + 4, budgets, depth + 1));
            }
            if (taken <= pc) {
                // Budgeted backward branch (a bottom-tested loop):
                // the taken edge re-enters the loop and consumes
                // budget; the fall-through is the exit.
                auto [it, inserted] = budgets.emplace(pc, *budget);
                (void)inserted;
                PathCost best;
                if (!takenDead && it->second > 0) {
                    std::map<Addr, unsigned> next = budgets;
                    --next[pc];
                    best = worstFrom(taken, std::move(next),
                                     depth + 1);
                }
                if (!fallDead)
                    best.takeMax(worstFrom(pc + 4, budgets,
                                           depth + 1));
                return total.plus(best);
            }
            PathCost best;
            if (!takenDead)
                best = worstFrom(taken, budgets, depth + 1);
            if (!fallDead)
                best.takeMax(worstFrom(pc + 4, budgets, depth + 1));
            return total.plus(best);
          }

          case TermKind::kIndirect:
            // Formerly a panic: generated kernels never emit these.
            reportOnce("wcet-indirect-jump", pc,
                       "indirect jump has no static successor: the "
                       "walk ends here, WCET is a lower bound");
            return total;

          case TermKind::kFallOffText:
            if (insn.op == Op::kWfi)
                return total;
            return total.plus(step);

          case TermKind::kFallThrough:
            // Block split by a label: plain instruction.
            if (insn.op == Op::kWfi)
                return total;
            total = total.plus(step);
            pc += 4;
            continue;
        }
    }
}

std::uint64_t
WcetAnalyzer::analyzeFunction(const std::string &symbol)
{
    return worstFrom(program_.symbol(symbol), {}, 0).cycles;
}

WcetResult
WcetAnalyzer::analyzeIsr()
{
    const PathCost sw = worstFrom(program_.symbol("k_isr"), {}, 0);

    WcetResult res;
    res.pathInsns = sw.insns;
    res.pathMemOps = sw.memOps;
    res.softwareCycles = params_.trapEntryCycles + sw.cycles;

    // Decoupled hardware path: the FSMs transfer up to 31 + 31 words
    // on the shared port, stalled once per core memory access, and
    // mret cannot complete earlier (paper Section 6.2).
    std::uint64_t fsm_words = 0;
    if (unit_.store)
        fsm_words += kCtxWords;
    if (unit_.load || unit_.preload)
        fsm_words += kCtxWords;
    if (fsm_words > 0) {
        res.hardwareCycles = params_.trapEntryCycles + fsm_words +
                             sw.memOps + params_.mretCycles;
    }
    res.totalCycles = std::max(res.softwareCycles, res.hardwareCycles);
    return res;
}

} // namespace rtu
