/**
 * @file
 * Static worst-case execution time analysis of the generated ISR
 * (paper Section 6.2, CV32E40P only).
 *
 * Method, mechanized from the paper's description: walk the ISR's
 * control flow assuming the maximum latency of every instruction
 * (taken branches, worst-case iterative divides, load-use stalls),
 * bound every loop with the kernel generator's annotations (8 delayed
 * tasks, 8-entry lists), and account for RTOSUnit FSM latency and the
 * memory-port stalls core accesses inflict on it. The reported WCET
 * is the maximum of the software path and the decoupled hardware
 * path, as in the paper.
 *
 * The walk runs over the shared CFG (analyze/cfg.hh), the same edge
 * construction the lint passes verify. Unsound inputs — unannotated
 * backward branches, indirect jumps — no longer abort the process:
 * they are reported through diagnostics() and the offending edge is
 * treated as infeasible, so exploration flows (src/explore) can
 * surface the problem instead of dying.
 */

#ifndef RTU_WCET_WCET_HH
#define RTU_WCET_WCET_HH

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "analyze/absint/facts.hh"
#include "analyze/cfg.hh"
#include "analyze/diag.hh"
#include "asm/program.hh"
#include "cores/cv32e40p.hh"
#include "rtosunit/config.hh"

namespace rtu {

struct WcetResult
{
    std::uint64_t totalCycles = 0;     ///< the reported WCET
    std::uint64_t softwareCycles = 0;  ///< worst ISR instruction path
    std::uint64_t hardwareCycles = 0;  ///< worst FSM path incl. stalls
    std::uint64_t pathInsns = 0;       ///< instructions on that path
    std::uint64_t pathMemOps = 0;      ///< loads/stores on that path
};

class WcetAnalyzer
{
  public:
    WcetAnalyzer(const Program &program, const RtosUnitConfig &unit,
                 const Cv32e40pParams &params = {});

    /** Analyze from interrupt entry ("k_isr") to mret completion. */
    WcetResult analyzeIsr();

    /** Worst-case cycles of one function (until its return). */
    std::uint64_t analyzeFunction(const std::string &symbol);

    /**
     * Apply abstract-interpretation facts (deriveAbsintFacts): every
     * back edge is budgeted with the tighter of its annotation and
     * the inferred bound (inferred bounds also unlock loops with no
     * annotation at all, including backward conditional branches),
     * and statically infeasible branch edges are excluded from the
     * longest-path search. Must be called before the first analyze;
     * with no facts the analysis is exactly the annotation-only walk.
     */
    void setFacts(AbsintFacts facts);

    /**
     * Soundness problems found while walking (accumulated across
     * analyze calls): "wcet-unannotated-back-edge" where a backward
     * branch had no loopBounds annotation (its taken edge was treated
     * as infeasible) and "wcet-indirect-jump" where a non-return jalr
     * ended the walk. Empty for every generated kernel.
     */
    const std::vector<Diagnostic> &diagnostics() const
    {
        return diags_;
    }

  private:
    struct PathCost
    {
        std::uint64_t cycles = 0;
        std::uint64_t insns = 0;
        std::uint64_t memOps = 0;

        void
        takeMax(const PathCost &other)
        {
            if (other.cycles > cycles)
                *this = other;
        }

        PathCost
        plus(const PathCost &other) const
        {
            return {cycles + other.cycles, insns + other.insns,
                    memOps + other.memOps};
        }
    };

    /** Worst path from @p pc to a terminator (mret or ret). */
    PathCost worstFrom(Addr pc, std::map<Addr, unsigned> budgets,
                       unsigned depth);

    PathCost costOf(const DecodedInsn &insn) const;
    void reportOnce(const std::string &code, Addr pc,
                    const std::string &message);

    /** Tightest budget for the back edge at @p pc: min(annotation,
     *  inferred), or nullopt when neither exists. */
    std::optional<unsigned> backEdgeBudget(Addr pc) const;

    const Program &program_;
    RtosUnitConfig unit_;
    Cv32e40pParams params_;
    Cfg cfg_;
    AbsintFacts facts_;
    std::map<Addr, PathCost> functionCache_;
    std::vector<Diagnostic> diags_;
    std::set<std::pair<std::string, Addr>> reported_;
};

} // namespace rtu

#endif // RTU_WCET_WCET_HH
