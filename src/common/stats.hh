/**
 * @file
 * Sample statistics used to aggregate context-switch latencies.
 */

#ifndef RTU_COMMON_STATS_HH
#define RTU_COMMON_STATS_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "logging.hh"
#include "types.hh"

namespace rtu {

/**
 * Online min/max/mean plus retained samples for percentiles and
 * distribution inspection (sample counts here are small: hundreds of
 * context switches per run).
 */
class SampleStats
{
  public:
    void
    add(double v)
    {
        samples_.push_back(v);
        sortedValid_ = false;
        sum_ += v;
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }

    std::uint64_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    double
    mean() const
    {
        rtu_assert(!empty(), "mean of empty sample set");
        return sum_ / static_cast<double>(samples_.size());
    }

    double
    min() const
    {
        rtu_assert(!empty(), "min of empty sample set");
        return min_;
    }

    double
    max() const
    {
        rtu_assert(!empty(), "max of empty sample set");
        return max_;
    }

    /** Jitter as defined by the paper: max - min. */
    double jitter() const { return max() - min(); }

    /**
     * p in [0,1]; true nearest-rank percentile: the smallest sample
     * with rank ceil(p*n) (rank 1 for p=0, rank n for p=1). The
     * sorted view is computed once and cached across calls.
     */
    double
    percentile(double p) const
    {
        rtu_assert(!empty(), "percentile of empty sample set");
        rtu_assert(p >= 0.0 && p <= 1.0, "percentile %f out of [0,1]", p);
        const std::vector<double> &sorted = sortedSamples();
        const double n = static_cast<double>(sorted.size());
        auto rank = static_cast<size_t>(std::ceil(p * n));
        rank = std::min(std::max<size_t>(rank, 1), sorted.size());
        return sorted[rank - 1];
    }

    double
    stddev() const
    {
        rtu_assert(!empty(), "stddev of empty sample set");
        const double m = mean();
        double acc = 0.0;
        for (double v : samples_)
            acc += (v - m) * (v - m);
        return samples_.size() > 1
            ? std::sqrt(acc / static_cast<double>(samples_.size() - 1))
            : 0.0;
    }

    const std::vector<double> &samples() const { return samples_; }

    /**
     * Bulk-append @p other's samples. Equivalent to add()ing them
     * one by one but with a single reserve, one sort-cache
     * invalidation and O(1) aggregate updates — the explorer merges
     * many per-workload result sets per design point. Index-based
     * copy after the reserve keeps self-merge well-defined.
     */
    void
    merge(const SampleStats &other)
    {
        const size_t n = other.samples_.size();
        if (n == 0)
            return;
        samples_.reserve(samples_.size() + n);
        for (size_t i = 0; i < n; ++i)
            samples_.push_back(other.samples_[i]);
        sortedValid_ = false;
        sum_ += other.sum_;
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }

  private:
    const std::vector<double> &
    sortedSamples() const
    {
        if (!sortedValid_) {
            sorted_ = samples_;
            std::sort(sorted_.begin(), sorted_.end());
            sortedValid_ = true;
        }
        return sorted_;
    }

    std::vector<double> samples_;
    mutable std::vector<double> sorted_;  ///< percentile cache
    mutable bool sortedValid_ = false;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

} // namespace rtu

#endif // RTU_COMMON_STATS_HH
