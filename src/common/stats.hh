/**
 * @file
 * Sample statistics used to aggregate context-switch latencies.
 */

#ifndef RTU_COMMON_STATS_HH
#define RTU_COMMON_STATS_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "logging.hh"
#include "types.hh"

namespace rtu {

/**
 * Online min/max/mean plus retained samples for percentiles and
 * distribution inspection (sample counts here are small: hundreds of
 * context switches per run).
 */
class SampleStats
{
  public:
    void
    add(double v)
    {
        samples_.push_back(v);
        sum_ += v;
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }

    std::uint64_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    double
    mean() const
    {
        rtu_assert(!empty(), "mean of empty sample set");
        return sum_ / static_cast<double>(samples_.size());
    }

    double
    min() const
    {
        rtu_assert(!empty(), "min of empty sample set");
        return min_;
    }

    double
    max() const
    {
        rtu_assert(!empty(), "max of empty sample set");
        return max_;
    }

    /** Jitter as defined by the paper: max - min. */
    double jitter() const { return max() - min(); }

    /** p in [0,1]; nearest-rank percentile. */
    double
    percentile(double p) const
    {
        rtu_assert(!empty(), "percentile of empty sample set");
        std::vector<double> sorted(samples_);
        std::sort(sorted.begin(), sorted.end());
        const auto idx = static_cast<size_t>(
            p * static_cast<double>(sorted.size() - 1) + 0.5);
        return sorted[std::min(idx, sorted.size() - 1)];
    }

    double
    stddev() const
    {
        rtu_assert(!empty(), "stddev of empty sample set");
        const double m = mean();
        double acc = 0.0;
        for (double v : samples_)
            acc += (v - m) * (v - m);
        return samples_.size() > 1
            ? std::sqrt(acc / static_cast<double>(samples_.size() - 1))
            : 0.0;
    }

    const std::vector<double> &samples() const { return samples_; }

    void
    merge(const SampleStats &other)
    {
        for (double v : other.samples_)
            add(v);
    }

  private:
    std::vector<double> samples_;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

} // namespace rtu

#endif // RTU_COMMON_STATS_HH
