#include "argparse.hh"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "logging.hh"

namespace rtu {

void
ArgParser::add(const std::string &name, Kind kind, void *dst,
               const std::string &help)
{
    rtu_assert(name.size() > 2 && name[0] == '-' && name[1] == '-',
               "option '%s' must start with --", name.c_str());
    for (const Option &o : options_)
        rtu_assert(o.name != name, "duplicate option '%s'", name.c_str());
    options_.push_back(Option{name, kind, dst, help});
}

void
ArgParser::addFlag(const std::string &name, bool *dst,
                   const std::string &help)
{
    add(name, Kind::kFlag, dst, help);
}

void
ArgParser::addUnsigned(const std::string &name, unsigned *dst,
                       const std::string &help)
{
    add(name, Kind::kUnsigned, dst, help);
}

void
ArgParser::addU64(const std::string &name, std::uint64_t *dst,
                  const std::string &help)
{
    add(name, Kind::kU64, dst, help);
}

void
ArgParser::addDouble(const std::string &name, double *dst,
                     const std::string &help)
{
    add(name, Kind::kDouble, dst, help);
}

void
ArgParser::addString(const std::string &name, std::string *dst,
                     const std::string &help)
{
    add(name, Kind::kString, dst, help);
}

void
ArgParser::addStringList(const std::string &name,
                         std::vector<std::string> *dst,
                         const std::string &help)
{
    add(name, Kind::kStringList, dst, help);
}

std::string
ArgParser::usage(const std::string &prog) const
{
    std::ostringstream os;
    os << "usage: " << prog << " [options]\n  " << summary_ << "\n\n"
       << "options:\n";
    for (const Option &o : options_) {
        std::string head = "  " + o.name;
        if (o.kind != Kind::kFlag)
            head += " <value>";
        os << head;
        for (size_t pad = head.size(); pad < 28; ++pad)
            os << ' ';
        os << o.help << '\n';
    }
    os << "  --help                    print this message and exit\n";
    return os.str();
}

void
ArgParser::fail(const std::string &prog, const std::string &why) const
{
    std::fprintf(stderr, "%s: %s\n%s", prog.c_str(), why.c_str(),
                 usage(prog).c_str());
    std::exit(1);
}

bool
ArgParser::parse(int argc, char **argv)
{
    const std::string prog = argc > 0 ? argv[0] : "?";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::fputs(usage(prog).c_str(), stdout);
            std::exit(0);
        }
        // Both `--flag value` and `--flag=value` are accepted.
        std::string inline_value;
        bool have_inline = false;
        const std::string::size_type eq = arg.find('=');
        if (arg.rfind("--", 0) == 0 && eq != std::string::npos) {
            inline_value = arg.substr(eq + 1);
            arg.resize(eq);
            have_inline = true;
        }
        const Option *opt = nullptr;
        for (const Option &o : options_) {
            if (o.name == arg) {
                opt = &o;
                break;
            }
        }
        if (!opt)
            fail(prog, "unknown option '" + arg + "'");
        if (opt->kind == Kind::kFlag) {
            if (have_inline)
                fail(prog, "option '" + arg + "' takes no value");
            *static_cast<bool *>(opt->dst) = true;
            continue;
        }
        if (!have_inline && i + 1 >= argc)
            fail(prog, "option '" + arg + "' needs a value");
        const std::string value =
            have_inline ? inline_value : std::string(argv[++i]);
        char *end = nullptr;
        switch (opt->kind) {
          case Kind::kUnsigned: {
            const unsigned long v = std::strtoul(value.c_str(), &end, 0);
            if (end == value.c_str() || *end != '\0')
                fail(prog, "option '" + arg + "': bad number '" +
                           value + "'");
            *static_cast<unsigned *>(opt->dst) =
                static_cast<unsigned>(v);
            break;
          }
          case Kind::kU64: {
            const unsigned long long v =
                std::strtoull(value.c_str(), &end, 0);
            if (end == value.c_str() || *end != '\0')
                fail(prog, "option '" + arg + "': bad number '" +
                           value + "'");
            *static_cast<std::uint64_t *>(opt->dst) = v;
            break;
          }
          case Kind::kDouble: {
            const double v = std::strtod(value.c_str(), &end);
            if (end == value.c_str() || *end != '\0')
                fail(prog, "option '" + arg + "': bad number '" +
                           value + "'");
            *static_cast<double *>(opt->dst) = v;
            break;
          }
          case Kind::kString:
            *static_cast<std::string *>(opt->dst) = value;
            break;
          case Kind::kStringList:
            static_cast<std::vector<std::string> *>(opt->dst)
                ->push_back(value);
            break;
          case Kind::kFlag:
            break;  // handled above
        }
    }
    return true;
}

} // namespace rtu
