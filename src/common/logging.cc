#include "logging.hh"

#include <cstdarg>
#include <vector>

namespace rtu {

namespace {
bool gQuiet = false;

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap2);
    va_end(ap2);
    if (n < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(n));
}
} // namespace

std::string
csprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    return s;
}

void
setQuiet(bool q)
{
    gQuiet = q;
}

bool
quiet()
{
    return gQuiet;
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
guestFaultImpl(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    throw GuestFault(msg);
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    if (gQuiet)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const char *fmt, ...)
{
    if (gQuiet)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace rtu
