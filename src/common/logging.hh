/**
 * @file
 * Error and status reporting in the gem5 idiom.
 *
 * panic()  — an internal invariant of the simulator was violated (a bug in
 *            this code base). Aborts.
 * fatal()  — the simulation cannot continue due to a user-level error
 *            (bad configuration, invalid workload). Exits with code 1.
 * warn()   — something works well enough but deserves attention.
 * inform() — plain status output.
 */

#ifndef RTU_COMMON_LOGGING_HH
#define RTU_COMMON_LOGGING_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace rtu {

/** Printf-style formatting into a std::string. */
std::string csprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

[[noreturn]] void panicImpl(const char *file, int line, const char *fmt,
                            ...) __attribute__((format(printf, 3, 4)));

/**
 * The guest program did something architecturally fatal: executed an
 * illegal instruction, touched unmapped memory, hit ebreak. Unlike a
 * panic (a simulator bug), this can be the guest's fault — notably
 * under fault injection, where corrupted state is *expected* to crash.
 * The run loop catches it and ends the run with RunStatus::kGuestFault;
 * outside a run it terminates like a panic (what() is printed).
 */
class GuestFault : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

[[noreturn]] void guestFaultImpl(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt,
                            ...) __attribute__((format(printf, 3, 4)));

void warnImpl(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

void informImpl(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Globally silence warn()/inform() (used by benchmarks). */
void setQuiet(bool quiet);
bool quiet();

} // namespace rtu

#define panic(...) ::rtu::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define guest_fault(...) ::rtu::guestFaultImpl(__VA_ARGS__)
#define fatal(...) ::rtu::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define warn(...) ::rtu::warnImpl(__VA_ARGS__)
#define inform(...) ::rtu::informImpl(__VA_ARGS__)

/**
 * Simulator-internal invariant check; active in all build types because
 * timing bugs are silent otherwise.
 */
#define rtu_assert(cond, fmt, ...)                                       \
    do {                                                                 \
        if (!(cond))                                                     \
            ::rtu::panicImpl(__FILE__, __LINE__,                         \
                             "assertion '" #cond "' failed: " fmt,       \
                             ##__VA_ARGS__);                             \
    } while (0)

#endif // RTU_COMMON_LOGGING_HH
