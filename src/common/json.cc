#include "json.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace rtu {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\t': out += "\\t"; break;
          case '\n': out += "\\n"; break;
          case '\f': out += "\\f"; break;
          case '\r': out += "\\r"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(static_cast<char>(c));
            }
        }
    }
    return out;
}

namespace {

int
hexVal(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

} // namespace

std::string
jsonUnescape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (size_t i = 0; i < s.size(); ++i) {
        const char c = s[i];
        if (c != '\\' || i + 1 >= s.size()) {
            out.push_back(c);
            continue;
        }
        const char e = s[++i];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 't': out.push_back('\t'); break;
          case 'n': out.push_back('\n'); break;
          case 'f': out.push_back('\f'); break;
          case 'r': out.push_back('\r'); break;
          case 'u': {
            if (i + 4 >= s.size()) {
                out += "\\u";  // malformed: keep verbatim
                break;
            }
            int cp = 0;
            bool ok = true;
            for (int k = 1; k <= 4; ++k) {
                const int h = hexVal(s[i + k]);
                ok = ok && h >= 0;
                cp = (cp << 4) | (h < 0 ? 0 : h);
            }
            if (!ok) {
                out += "\\u";
                break;
            }
            i += 4;
            // Minimal UTF-8 encoding (surrogate pairs are not produced
            // by jsonEscape; a lone surrogate encodes as-is).
            if (cp < 0x80) {
                out.push_back(static_cast<char>(cp));
            } else if (cp < 0x800) {
                out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
                out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
            } else {
                out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
                out.push_back(
                    static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
                out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
            }
            break;
          }
          default:
            out.push_back('\\');  // unknown escape: keep verbatim
            out.push_back(e);
        }
    }
    return out;
}

std::string
jsonNumber(double v, const char *fmt)
{
    if (!std::isfinite(v))
        return "null";
    char buf[64];
    std::snprintf(buf, sizeof(buf), fmt, v);
    return buf;
}

bool
jsonParseNumber(const std::string &text, double *out, bool *wasNull)
{
    if (wasNull)
        *wasNull = false;
    const char *s = text.c_str();
    while (*s == ' ' || *s == '\t')
        ++s;
    if (std::strncmp(s, "null", 4) == 0) {
        if (out)
            *out = std::nan("");
        if (wasNull)
            *wasNull = true;
        s += 4;
    } else {
        char *end = nullptr;
        const double v = std::strtod(s, &end);
        if (end == s)
            return false;
        if (out)
            *out = v;
        s = end;
    }
    while (*s == ' ' || *s == '\t')
        ++s;
    return *s == '\0';
}

} // namespace rtu
