/**
 * @file
 * Shared deterministic PRNG + string-hash primitives.
 *
 * Every subsystem that fans work out across a thread pool (sweep,
 * inject, sched) derives its per-point randomness from these two
 * functions and *only* from its inputs — never from thread identity,
 * wall clock or iteration order — so campaigns are byte-reproducible
 * from their seed alone at any --threads value.
 */

#ifndef RTU_COMMON_RNG_HH
#define RTU_COMMON_RNG_HH

#include <cstdint>
#include <string>

namespace rtu {

/** SplitMix64: tiny, fast, well-mixed deterministic generator. */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : x_(seed) {}

    std::uint64_t
    next()
    {
        std::uint64_t z = (x_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform-ish draw in [0, bound); bound must be nonzero. */
    std::uint64_t below(std::uint64_t bound) { return next() % bound; }

    /** Uniform double in [0, 1) with 53 bits of precision. */
    double
    unit()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    std::uint64_t x_;
};

/**
 * FNV-1a over a string: the canonical way a textual point key
 * becomes a 64-bit seed (sweep per-point seeds, inject plan seeds).
 */
inline std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace rtu

#endif // RTU_COMMON_RNG_HH
