/**
 * @file
 * JSON string escaping shared by every JSONL writer in the tree
 * (sweep results, episode traces, the explorer's persistent result
 * cache). Workload names and cache keys flow into these streams; one
 * audited helper keeps them well-formed everywhere.
 */

#ifndef RTU_COMMON_JSON_HH
#define RTU_COMMON_JSON_HH

#include <string>

namespace rtu {

/**
 * Escape @p s for embedding inside a JSON string literal: quote,
 * backslash, and all control characters below 0x20 (named escapes for
 * \b \t \n \f \r, \u00XX otherwise). Non-ASCII bytes pass through
 * untouched (JSON is UTF-8).
 */
std::string jsonEscape(const std::string &s);

/**
 * Inverse of jsonEscape for reading our own JSONL back (the result
 * cache). Handles the two-character escapes plus \uXXXX (encoded as
 * UTF-8). Malformed trailing escapes are kept verbatim rather than
 * dropped, so corrupt cache lines fail key comparison instead of
 * aliasing another key.
 */
std::string jsonUnescape(const std::string &s);

/**
 * Serialize a double as a JSON number. JSON has no representation for
 * infinities or NaN — printf would emit bare `inf`/`nan` and corrupt
 * the stream — so non-finite values become the literal `null`.
 * @p fmt is the printf conversion for the finite case (defaults to
 * round-trippable %.17g; writers wanting byte-stable fixed precision
 * pass e.g. "%.3f").
 */
std::string jsonNumber(double v, const char *fmt = "%.17g");

/**
 * Parse a JSON number field back, tolerating the `null` that
 * jsonNumber emits for non-finite values (and, for backward
 * compatibility with streams written before the fix, bare inf/nan):
 * returns false only on genuinely malformed text. `null` parses as
 * quiet NaN with @p wasNull set.
 */
bool jsonParseNumber(const std::string &text, double *out,
                     bool *wasNull = nullptr);

} // namespace rtu

#endif // RTU_COMMON_JSON_HH
