/**
 * @file
 * Strict command-line parser shared by every bench driver.
 *
 * The historical per-bench loops silently skipped anything they did
 * not recognize, so a misspelled flag (`--iteration 2`) ran the full
 * default experiment instead of failing — the worst possible behavior
 * for batch jobs. This parser is declarative and strict: flags are
 * registered with a destination and a one-line help string, an unknown
 * flag or a missing value prints usage to stderr and exits non-zero,
 * and `--help` prints the same usage and exits 0.
 */

#ifndef RTU_COMMON_ARGPARSE_HH
#define RTU_COMMON_ARGPARSE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace rtu {

class ArgParser
{
  public:
    /** @p summary is the one-line program description shown by
     *  usage(); @p prog is argv[0] at parse time. */
    explicit ArgParser(std::string summary)
        : summary_(std::move(summary))
    {}

    /** Boolean switch (no value): presence sets @p dst true. */
    void addFlag(const std::string &name, bool *dst,
                 const std::string &help);

    /** Valued options; each consumes the following argv element. */
    void addUnsigned(const std::string &name, unsigned *dst,
                     const std::string &help);
    void addU64(const std::string &name, std::uint64_t *dst,
                const std::string &help);
    void addDouble(const std::string &name, double *dst,
                   const std::string &help);
    void addString(const std::string &name, std::string *dst,
                   const std::string &help);
    /** Repeatable valued option: every occurrence appends. */
    void addStringList(const std::string &name,
                       std::vector<std::string> *dst,
                       const std::string &help);

    /**
     * Parse argv. On success returns true. On `--help`, prints usage
     * to stdout and exits 0. On an unknown flag, a missing value, or
     * an unparsable number, prints the error and usage to stderr and
     * exits 1 (bench mains have no recovery path — failing loudly is
     * the point).
     */
    bool parse(int argc, char **argv);

    /** The generated usage text (for tests). */
    std::string usage(const std::string &prog) const;

  private:
    enum class Kind { kFlag, kUnsigned, kU64, kDouble, kString,
                      kStringList };

    struct Option
    {
        std::string name;
        Kind kind;
        void *dst;
        std::string help;
    };

    void add(const std::string &name, Kind kind, void *dst,
             const std::string &help);
    [[noreturn]] void fail(const std::string &prog,
                           const std::string &why) const;

    std::string summary_;
    std::vector<Option> options_;
};

} // namespace rtu

#endif // RTU_COMMON_ARGPARSE_HH
