/**
 * @file
 * Bit-manipulation helpers for instruction encode/decode.
 */

#ifndef RTU_COMMON_BITUTIL_HH
#define RTU_COMMON_BITUTIL_HH

#include <cstdint>

#include "types.hh"

namespace rtu {

/** Extract bits [hi:lo] (inclusive) from @p value. */
constexpr Word
bits(Word value, unsigned hi, unsigned lo)
{
    const Word width = hi - lo + 1;
    const Word mask = width >= 32 ? ~Word{0} : ((Word{1} << width) - 1);
    return (value >> lo) & mask;
}

/** Extract a single bit. */
constexpr Word
bit(Word value, unsigned pos)
{
    return (value >> pos) & 1u;
}

/** Sign-extend the low @p width bits of @p value to 32 bits. */
constexpr SWord
sext(Word value, unsigned width)
{
    const unsigned shift = 32 - width;
    return static_cast<SWord>(value << shift) >> shift;
}

/** Insert @p field into bits [hi:lo] of a zeroed word. */
constexpr Word
insertBits(Word field, unsigned hi, unsigned lo)
{
    const Word width = hi - lo + 1;
    const Word mask = width >= 32 ? ~Word{0} : ((Word{1} << width) - 1);
    return (field & mask) << lo;
}

/** True if @p value fits in a signed immediate of @p width bits. */
constexpr bool
fitsSigned(SWord value, unsigned width)
{
    const SWord lo = -(SWord{1} << (width - 1));
    const SWord hi = (SWord{1} << (width - 1)) - 1;
    return value >= lo && value <= hi;
}

/** Align @p addr down to a multiple of @p align (power of two). */
constexpr Addr
alignDown(Addr addr, Addr align)
{
    return addr & ~(align - 1);
}

/** True if @p addr is aligned to @p align (power of two). */
constexpr bool
isAligned(Addr addr, Addr align)
{
    return (addr & (align - 1)) == 0;
}

} // namespace rtu

#endif // RTU_COMMON_BITUTIL_HH
