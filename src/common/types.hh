/**
 * @file
 * Fundamental scalar types shared across the simulator.
 */

#ifndef RTU_COMMON_TYPES_HH
#define RTU_COMMON_TYPES_HH

#include <cstdint>

namespace rtu {

/** 32-bit machine word (RV32). */
using Word = std::uint32_t;

/** Signed view of a machine word. */
using SWord = std::int32_t;

/** 64-bit double word (mtime, products of MUL). */
using DWord = std::uint64_t;

/** Byte address in the guest physical address space. */
using Addr = std::uint32_t;

/** Simulation time in core clock cycles. */
using Cycle = std::uint64_t;

/** Architectural register index (0..31). */
using RegIndex = std::uint8_t;

/** Task identifier used by the RTOSUnit hardware lists. */
using TaskId = std::uint8_t;

/** Task priority (higher value = more urgent, FreeRTOS convention). */
using Priority = std::uint8_t;

} // namespace rtu

#endif // RTU_COMMON_TYPES_HH
