/**
 * @file
 * RTOSBench-like workload suite (paper Section 6.1 evaluates "all
 * tests provided by the RISC-V port of RTOSBench", 20 iterations).
 *
 * Each workload populates a kernel with tasks and synchronization
 * objects exercising one kernel path: voluntary yields, time-slice
 * round robin, mutex contention, semaphore signalling, delay/wake
 * storms, priority preemption, and deferred external-interrupt
 * handling. Workloads finish by writing the host exit register with
 * code 0; tasks emit trace events the tests use to verify scheduling
 * semantics across all RTOSUnit configurations.
 */

#ifndef RTU_WORKLOADS_WORKLOADS_HH
#define RTU_WORKLOADS_WORKLOADS_HH

#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "kernel/kernel.hh"

namespace rtu {

struct WorkloadInfo
{
    std::string name;
    bool usesExternalIrq = false;
    /**
     * Tasks call k_delay_until (absolute-tick sleep); the kernel
     * generator must emit it and keep k_tick_count live even on
     * hardware-scheduler configurations (see KernelParams).
     */
    bool usesDelayUntil = false;
    std::vector<Cycle> extIrqSchedule;
    std::uint64_t maxCycles = 20'000'000;
};

class Workload
{
  public:
    virtual ~Workload() = default;
    virtual WorkloadInfo info() const = 0;
    /** Create mutexes/semaphores and add the tasks. */
    virtual void addTasks(KernelBuilder &kb) const = 0;
};

/** Two equal-priority tasks yielding to each other. */
std::unique_ptr<Workload> makeYieldPingPong(unsigned iterations);

/** Four equal-priority compute tasks under timer round robin. */
std::unique_ptr<Workload> makeRoundRobin(unsigned iterations);

/**
 * Three workers contending on one mutex with mixed priorities — the
 * paper's power-analysis workload (`mutex_workload`, Section 6.3).
 */
std::unique_ptr<Workload> makeMutexWorkload(unsigned iterations);

/** Six tasks sleeping with different periods (delay-list stress). */
std::unique_ptr<Workload> makeDelayWake(unsigned iterations);

/** Producer/consumer over a counting semaphore. */
std::unique_ptr<Workload> makeSemPingPong(unsigned iterations);

/** High-priority task periodically preempting a busy low one. */
std::unique_ptr<Workload> makePriorityPreempt(unsigned iterations);

/**
 * Deferred interrupt handling: external interrupts wake a
 * high-priority handler task through a semaphore (paper Section 1:
 * the deferred-handling case that context-switch latency bounds).
 */
std::unique_ptr<Workload> makeExtInterrupt(unsigned iterations);

/** The full suite, in a stable order. */
std::vector<std::unique_ptr<Workload>> standardSuite(unsigned iterations);

/** Names of the standard suite, in the same stable order. */
std::vector<std::string> standardWorkloadNames();

/** Look a workload up by name (fatal when unknown). */
std::unique_ptr<Workload> makeWorkload(const std::string &name,
                                       unsigned iterations);

} // namespace rtu

#endif // RTU_WORKLOADS_WORKLOADS_HH
