#include "workloads.hh"

#include "common/logging.hh"
#include "sim/hostio.hh"

namespace rtu {

namespace {

using kernel::kMaxTasks;

/**
 * Count one finished task in "w_done"; the task observing the final
 * count stops the simulation with exit code 0, the others park
 * themselves on a quasi-infinite delay.
 */
void
emitFinish(KernelBuilder &kb, unsigned total, const std::string &unique)
{
    Assembler &a = kb.a();
    a.csrrci(Zero, csr::kMstatus, 8);
    a.la(T0, "w_done");
    a.lw(T1, 0, T0);
    a.addi(T1, T1, 1);
    a.sw(T1, 0, T0);
    a.csrrsi(Zero, csr::kMstatus, 8);
    a.li(T2, static_cast<SWord>(total));
    const std::string park = "w_park_" + unique;
    a.bne(T1, T2, park);
    kb.emitExit(0);
    a.label(park);
    const std::string loop = "w_parkloop_" + unique;
    a.label(loop);
    a.li(A0, 1'000'000);
    a.call("k_delay");
    a.j(loop);
}

class LambdaWorkload : public Workload
{
  public:
    LambdaWorkload(WorkloadInfo info,
                   std::function<void(KernelBuilder &)> add)
        : info_(std::move(info)), add_(std::move(add))
    {}

    WorkloadInfo info() const override { return info_; }
    void addTasks(KernelBuilder &kb) const override { add_(kb); }

  private:
    WorkloadInfo info_;
    std::function<void(KernelBuilder &)> add_;
};

} // namespace

std::unique_ptr<Workload>
makeYieldPingPong(unsigned iterations)
{
    WorkloadInfo info;
    info.name = "yield_pingpong";
    return std::make_unique<LambdaWorkload>(info, [=](KernelBuilder &kb) {
        kb.a().dataWord("w_done", 0);
        for (unsigned t = 0; t < 2; ++t) {
            TaskSpec spec;
            spec.name = csprintf("ping%u", t);
            spec.priority = 2;
            spec.body = [=](KernelBuilder &k) {
                Assembler &a = k.a();
                const std::string loop = csprintf("w_yl_%u", t);
                a.li(S0, static_cast<SWord>(iterations));
                a.label(loop);
                k.emitTrace(tag::kWorkItem, 0x100 * (t + 1));
                k.callYield();
                a.addi(S0, S0, -1);
                a.bnez(S0, loop);
                emitFinish(k, 2, csprintf("y%u", t));
            };
            kb.addTask(spec);
        }
    });
}

std::unique_ptr<Workload>
makeRoundRobin(unsigned iterations)
{
    WorkloadInfo info;
    info.name = "round_robin";
    return std::make_unique<LambdaWorkload>(info, [=](KernelBuilder &kb) {
        kb.a().dataWord("w_done", 0);
        for (unsigned t = 0; t < 4; ++t) {
            TaskSpec spec;
            spec.name = csprintf("rr%u", t);
            spec.priority = 2;
            spec.body = [=](KernelBuilder &k) {
                Assembler &a = k.a();
                const std::string loop = csprintf("w_rrl_%u", t);
                a.li(S0, static_cast<SWord>(iterations));
                a.label(loop);
                k.emitBusyLoop(120 + 15 * t);
                k.emitBusyDivLoop(3);
                k.emitTrace(tag::kWorkItem, t);
                a.addi(S0, S0, -1);
                a.bnez(S0, loop);
                emitFinish(k, 4, csprintf("r%u", t));
            };
            kb.addTask(spec);
        }
    });
}

std::unique_ptr<Workload>
makeMutexWorkload(unsigned iterations)
{
    WorkloadInfo info;
    info.name = "mutex_workload";
    return std::make_unique<LambdaWorkload>(info, [=](KernelBuilder &kb) {
        kb.a().dataWord("w_done", 0);
        kb.createMutex("w_mtx");
        // Two medium-priority workers plus one high-priority worker
        // that sleeps between acquisitions (avoids starving the
        // others while still exercising priority handover).
        for (unsigned t = 0; t < 3; ++t) {
            TaskSpec spec;
            spec.name = csprintf("mtx%u", t);
            spec.priority = t == 2 ? 3 : 2;
            spec.body = [=](KernelBuilder &k) {
                Assembler &a = k.a();
                const std::string loop = csprintf("w_mxl_%u", t);
                a.li(S0, static_cast<SWord>(iterations));
                a.label(loop);
                k.callMutexTake("w_mtx");
                k.emitTrace(tag::kMutexAcq, t);
                k.emitBusyLoop(60);
                k.emitTrace(tag::kMutexRel, t);
                k.callMutexGive("w_mtx");
                if (t == 2)
                    k.callDelay(2);
                else
                    k.emitBusyLoop(40);
                a.addi(S0, S0, -1);
                a.bnez(S0, loop);
                emitFinish(k, 3, csprintf("m%u", t));
            };
            kb.addTask(spec);
        }
    });
}

std::unique_ptr<Workload>
makeDelayWake(unsigned iterations)
{
    WorkloadInfo info;
    info.name = "delay_wake";
    return std::make_unique<LambdaWorkload>(info, [=](KernelBuilder &kb) {
        kb.a().dataWord("w_done", 0);
        for (unsigned t = 0; t < 6; ++t) {
            TaskSpec spec;
            spec.name = csprintf("dly%u", t);
            spec.priority = static_cast<Priority>(1 + (t % 3));
            spec.body = [=](KernelBuilder &k) {
                Assembler &a = k.a();
                const std::string loop = csprintf("w_dwl_%u", t);
                a.li(S0, static_cast<SWord>(iterations));
                a.label(loop);
                k.callDelay(1 + (t % 4));
                k.emitTrace(tag::kWorkItem, t);
                k.emitBusyLoop(25);
                a.addi(S0, S0, -1);
                a.bnez(S0, loop);
                emitFinish(k, 6, csprintf("d%u", t));
            };
            kb.addTask(spec);
        }
    });
}

std::unique_ptr<Workload>
makeSemPingPong(unsigned iterations)
{
    WorkloadInfo info;
    info.name = "sem_pingpong";
    return std::make_unique<LambdaWorkload>(info, [=](KernelBuilder &kb) {
        kb.createSemaphore("w_sem", 0);
        TaskSpec producer;
        producer.name = "producer";
        producer.priority = 2;
        producer.body = [=](KernelBuilder &k) {
            Assembler &a = k.a();
            a.label("w_spp_prod");
            k.callDelay(1);
            k.emitTrace(tag::kSemGive, 0);
            k.callSemGive("w_sem");
            a.j("w_spp_prod");
        };
        kb.addTask(producer);

        TaskSpec consumer;
        consumer.name = "consumer";
        consumer.priority = 3;
        consumer.body = [=](KernelBuilder &k) {
            Assembler &a = k.a();
            a.li(S0, static_cast<SWord>(iterations));
            a.label("w_spp_cons");
            k.callSemTake("w_sem");
            k.emitTrace(tag::kSemTake, 0);
            a.addi(S0, S0, -1);
            a.bnez(S0, "w_spp_cons");
            k.emitExit(0);
        };
        kb.addTask(consumer);
    });
}

std::unique_ptr<Workload>
makePriorityPreempt(unsigned iterations)
{
    WorkloadInfo info;
    info.name = "priority_preempt";
    return std::make_unique<LambdaWorkload>(info, [=](KernelBuilder &kb) {
        TaskSpec low;
        low.name = "background";
        low.priority = 1;
        low.body = [](KernelBuilder &k) {
            Assembler &a = k.a();
            a.label("w_pp_bg");
            k.emitBusyLoop(90);
            k.emitBusyDivLoop(4);
            a.j("w_pp_bg");
        };
        kb.addTask(low);

        TaskSpec high;
        high.name = "control";
        high.priority = 4;
        high.body = [=](KernelBuilder &k) {
            Assembler &a = k.a();
            a.li(S0, static_cast<SWord>(iterations));
            a.label("w_pp_hi");
            k.callDelay(2);
            k.emitTrace(tag::kWorkItem, 0xC0);
            k.emitBusyLoop(30);
            a.addi(S0, S0, -1);
            a.bnez(S0, "w_pp_hi");
            k.emitExit(0);
        };
        kb.addTask(high);
    });
}

std::unique_ptr<Workload>
makeExtInterrupt(unsigned iterations)
{
    WorkloadInfo info;
    info.name = "ext_interrupt";
    info.usesExternalIrq = true;
    for (unsigned i = 0; i < iterations; ++i)
        info.extIrqSchedule.push_back(20'000 + 2'500 * i);
    return std::make_unique<LambdaWorkload>(info, [=](KernelBuilder &kb) {
        TaskSpec handler;
        handler.name = "handler";
        handler.priority = 5;
        handler.body = [=](KernelBuilder &k) {
            Assembler &a = k.a();
            a.li(S0, static_cast<SWord>(iterations));
            a.label("w_ext_h");
            k.callSemTake(k.extSemaphore());
            k.emitTrace(tag::kWorkItem, 0xE0);
            a.addi(S0, S0, -1);
            a.bnez(S0, "w_ext_h");
            k.emitExit(0);
        };
        kb.addTask(handler);

        TaskSpec bg;
        bg.name = "background";
        bg.priority = 1;
        bg.body = [](KernelBuilder &k) {
            Assembler &a = k.a();
            a.label("w_ext_bg");
            k.emitBusyLoop(70);
            k.emitBusyDivLoop(5);
            a.j("w_ext_bg");
        };
        kb.addTask(bg);
    });
}

std::vector<std::unique_ptr<Workload>>
standardSuite(unsigned iterations)
{
    std::vector<std::unique_ptr<Workload>> suite;
    suite.push_back(makeYieldPingPong(iterations));
    suite.push_back(makeRoundRobin(iterations));
    suite.push_back(makeMutexWorkload(iterations));
    suite.push_back(makeDelayWake(iterations));
    suite.push_back(makeSemPingPong(iterations));
    suite.push_back(makePriorityPreempt(iterations));
    suite.push_back(makeExtInterrupt(iterations));
    return suite;
}

std::vector<std::string>
standardWorkloadNames()
{
    return {"yield_pingpong", "round_robin",     "mutex_workload",
            "delay_wake",     "sem_pingpong",    "priority_preempt",
            "ext_interrupt"};
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name, unsigned iterations)
{
    if (name == "yield_pingpong")
        return makeYieldPingPong(iterations);
    if (name == "round_robin")
        return makeRoundRobin(iterations);
    if (name == "mutex_workload")
        return makeMutexWorkload(iterations);
    if (name == "delay_wake")
        return makeDelayWake(iterations);
    if (name == "sem_pingpong")
        return makeSemPingPong(iterations);
    if (name == "priority_preempt")
        return makePriorityPreempt(iterations);
    if (name == "ext_interrupt")
        return makeExtInterrupt(iterations);
    std::string known;
    for (const std::string &w : standardWorkloadNames())
        known += (known.empty() ? "" : ", ") + w;
    fatal("unknown workload '%s' (available: %s)", name.c_str(),
          known.c_str());
}

} // namespace rtu
