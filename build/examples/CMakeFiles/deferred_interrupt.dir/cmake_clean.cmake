file(REMOVE_RECURSE
  "CMakeFiles/deferred_interrupt.dir/deferred_interrupt.cpp.o"
  "CMakeFiles/deferred_interrupt.dir/deferred_interrupt.cpp.o.d"
  "deferred_interrupt"
  "deferred_interrupt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deferred_interrupt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
