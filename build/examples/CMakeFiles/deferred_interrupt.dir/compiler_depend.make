# Empty compiler generated dependencies file for deferred_interrupt.
# This may be replaced when dependencies are built.
