file(REMOVE_RECURSE
  "CMakeFiles/control_loop.dir/control_loop.cpp.o"
  "CMakeFiles/control_loop.dir/control_loop.cpp.o.d"
  "control_loop"
  "control_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/control_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
