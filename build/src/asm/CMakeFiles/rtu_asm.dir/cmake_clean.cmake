file(REMOVE_RECURSE
  "CMakeFiles/rtu_asm.dir/assembler.cc.o"
  "CMakeFiles/rtu_asm.dir/assembler.cc.o.d"
  "CMakeFiles/rtu_asm.dir/decode.cc.o"
  "CMakeFiles/rtu_asm.dir/decode.cc.o.d"
  "CMakeFiles/rtu_asm.dir/disasm.cc.o"
  "CMakeFiles/rtu_asm.dir/disasm.cc.o.d"
  "CMakeFiles/rtu_asm.dir/encode.cc.o"
  "CMakeFiles/rtu_asm.dir/encode.cc.o.d"
  "CMakeFiles/rtu_asm.dir/insn.cc.o"
  "CMakeFiles/rtu_asm.dir/insn.cc.o.d"
  "CMakeFiles/rtu_asm.dir/program.cc.o"
  "CMakeFiles/rtu_asm.dir/program.cc.o.d"
  "CMakeFiles/rtu_asm.dir/text_asm.cc.o"
  "CMakeFiles/rtu_asm.dir/text_asm.cc.o.d"
  "librtu_asm.a"
  "librtu_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtu_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
