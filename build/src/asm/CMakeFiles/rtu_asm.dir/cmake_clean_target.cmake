file(REMOVE_RECURSE
  "librtu_asm.a"
)
