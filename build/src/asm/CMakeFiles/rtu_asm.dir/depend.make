# Empty dependencies file for rtu_asm.
# This may be replaced when dependencies are built.
