file(REMOVE_RECURSE
  "CMakeFiles/rtu_asic.dir/asic.cc.o"
  "CMakeFiles/rtu_asic.dir/asic.cc.o.d"
  "librtu_asic.a"
  "librtu_asic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtu_asic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
