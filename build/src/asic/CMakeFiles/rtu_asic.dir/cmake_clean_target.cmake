file(REMOVE_RECURSE
  "librtu_asic.a"
)
