# Empty compiler generated dependencies file for rtu_asic.
# This may be replaced when dependencies are built.
