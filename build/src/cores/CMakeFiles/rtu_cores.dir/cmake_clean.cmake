file(REMOVE_RECURSE
  "CMakeFiles/rtu_cores.dir/cache.cc.o"
  "CMakeFiles/rtu_cores.dir/cache.cc.o.d"
  "CMakeFiles/rtu_cores.dir/cv32e40p.cc.o"
  "CMakeFiles/rtu_cores.dir/cv32e40p.cc.o.d"
  "CMakeFiles/rtu_cores.dir/cva6.cc.o"
  "CMakeFiles/rtu_cores.dir/cva6.cc.o.d"
  "CMakeFiles/rtu_cores.dir/executor.cc.o"
  "CMakeFiles/rtu_cores.dir/executor.cc.o.d"
  "CMakeFiles/rtu_cores.dir/nax.cc.o"
  "CMakeFiles/rtu_cores.dir/nax.cc.o.d"
  "librtu_cores.a"
  "librtu_cores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtu_cores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
