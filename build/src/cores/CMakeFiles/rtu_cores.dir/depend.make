# Empty dependencies file for rtu_cores.
# This may be replaced when dependencies are built.
