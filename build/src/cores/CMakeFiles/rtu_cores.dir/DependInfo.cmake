
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cores/cache.cc" "src/cores/CMakeFiles/rtu_cores.dir/cache.cc.o" "gcc" "src/cores/CMakeFiles/rtu_cores.dir/cache.cc.o.d"
  "/root/repo/src/cores/cv32e40p.cc" "src/cores/CMakeFiles/rtu_cores.dir/cv32e40p.cc.o" "gcc" "src/cores/CMakeFiles/rtu_cores.dir/cv32e40p.cc.o.d"
  "/root/repo/src/cores/cva6.cc" "src/cores/CMakeFiles/rtu_cores.dir/cva6.cc.o" "gcc" "src/cores/CMakeFiles/rtu_cores.dir/cva6.cc.o.d"
  "/root/repo/src/cores/executor.cc" "src/cores/CMakeFiles/rtu_cores.dir/executor.cc.o" "gcc" "src/cores/CMakeFiles/rtu_cores.dir/executor.cc.o.d"
  "/root/repo/src/cores/nax.cc" "src/cores/CMakeFiles/rtu_cores.dir/nax.cc.o" "gcc" "src/cores/CMakeFiles/rtu_cores.dir/nax.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rtu_common.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/rtu_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rtu_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
