file(REMOVE_RECURSE
  "librtu_cores.a"
)
