file(REMOVE_RECURSE
  "CMakeFiles/rtu_sim.dir/clint.cc.o"
  "CMakeFiles/rtu_sim.dir/clint.cc.o.d"
  "CMakeFiles/rtu_sim.dir/hostio.cc.o"
  "CMakeFiles/rtu_sim.dir/hostio.cc.o.d"
  "CMakeFiles/rtu_sim.dir/mem.cc.o"
  "CMakeFiles/rtu_sim.dir/mem.cc.o.d"
  "librtu_sim.a"
  "librtu_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtu_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
