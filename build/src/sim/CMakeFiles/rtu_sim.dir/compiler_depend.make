# Empty compiler generated dependencies file for rtu_sim.
# This may be replaced when dependencies are built.
