file(REMOVE_RECURSE
  "librtu_sim.a"
)
