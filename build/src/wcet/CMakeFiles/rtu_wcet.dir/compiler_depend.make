# Empty compiler generated dependencies file for rtu_wcet.
# This may be replaced when dependencies are built.
