file(REMOVE_RECURSE
  "CMakeFiles/rtu_wcet.dir/wcet.cc.o"
  "CMakeFiles/rtu_wcet.dir/wcet.cc.o.d"
  "librtu_wcet.a"
  "librtu_wcet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtu_wcet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
