file(REMOVE_RECURSE
  "librtu_wcet.a"
)
