
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wcet/wcet.cc" "src/wcet/CMakeFiles/rtu_wcet.dir/wcet.cc.o" "gcc" "src/wcet/CMakeFiles/rtu_wcet.dir/wcet.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rtu_common.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/rtu_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/cores/CMakeFiles/rtu_cores.dir/DependInfo.cmake"
  "/root/repo/build/src/rtosunit/CMakeFiles/rtu_rtosunit.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rtu_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
