file(REMOVE_RECURSE
  "librtu_kernel.a"
)
