# Empty dependencies file for rtu_kernel.
# This may be replaced when dependencies are built.
