file(REMOVE_RECURSE
  "CMakeFiles/rtu_kernel.dir/kernel.cc.o"
  "CMakeFiles/rtu_kernel.dir/kernel.cc.o.d"
  "librtu_kernel.a"
  "librtu_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtu_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
