# Empty dependencies file for rtu_rtosunit.
# This may be replaced when dependencies are built.
