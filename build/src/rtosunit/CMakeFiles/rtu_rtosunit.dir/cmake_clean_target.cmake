file(REMOVE_RECURSE
  "librtu_rtosunit.a"
)
