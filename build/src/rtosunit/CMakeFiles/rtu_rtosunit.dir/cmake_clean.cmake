file(REMOVE_RECURSE
  "CMakeFiles/rtu_rtosunit.dir/config.cc.o"
  "CMakeFiles/rtu_rtosunit.dir/config.cc.o.d"
  "CMakeFiles/rtu_rtosunit.dir/cv32rt.cc.o"
  "CMakeFiles/rtu_rtosunit.dir/cv32rt.cc.o.d"
  "CMakeFiles/rtu_rtosunit.dir/hw_lists.cc.o"
  "CMakeFiles/rtu_rtosunit.dir/hw_lists.cc.o.d"
  "CMakeFiles/rtu_rtosunit.dir/rtosunit.cc.o"
  "CMakeFiles/rtu_rtosunit.dir/rtosunit.cc.o.d"
  "librtu_rtosunit.a"
  "librtu_rtosunit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtu_rtosunit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
