# Empty compiler generated dependencies file for rtu_common.
# This may be replaced when dependencies are built.
