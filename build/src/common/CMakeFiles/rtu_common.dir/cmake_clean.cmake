file(REMOVE_RECURSE
  "CMakeFiles/rtu_common.dir/logging.cc.o"
  "CMakeFiles/rtu_common.dir/logging.cc.o.d"
  "librtu_common.a"
  "librtu_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtu_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
