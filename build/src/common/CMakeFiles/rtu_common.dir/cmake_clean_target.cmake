file(REMOVE_RECURSE
  "librtu_common.a"
)
