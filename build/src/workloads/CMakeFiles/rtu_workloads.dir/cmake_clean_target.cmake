file(REMOVE_RECURSE
  "librtu_workloads.a"
)
