# Empty dependencies file for rtu_workloads.
# This may be replaced when dependencies are built.
