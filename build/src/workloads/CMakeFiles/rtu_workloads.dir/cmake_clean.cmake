file(REMOVE_RECURSE
  "CMakeFiles/rtu_workloads.dir/workloads.cc.o"
  "CMakeFiles/rtu_workloads.dir/workloads.cc.o.d"
  "librtu_workloads.a"
  "librtu_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtu_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
