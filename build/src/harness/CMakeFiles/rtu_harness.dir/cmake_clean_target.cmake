file(REMOVE_RECURSE
  "librtu_harness.a"
)
