file(REMOVE_RECURSE
  "CMakeFiles/rtu_harness.dir/experiment.cc.o"
  "CMakeFiles/rtu_harness.dir/experiment.cc.o.d"
  "CMakeFiles/rtu_harness.dir/simulation.cc.o"
  "CMakeFiles/rtu_harness.dir/simulation.cc.o.d"
  "librtu_harness.a"
  "librtu_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtu_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
