# Empty compiler generated dependencies file for rtu_harness.
# This may be replaced when dependencies are built.
