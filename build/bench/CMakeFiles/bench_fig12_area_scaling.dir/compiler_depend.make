# Empty compiler generated dependencies file for bench_fig12_area_scaling.
# This may be replaced when dependencies are built.
