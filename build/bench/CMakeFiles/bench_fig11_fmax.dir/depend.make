# Empty dependencies file for bench_fig11_fmax.
# This may be replaced when dependencies are built.
