file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_fmax.dir/bench_fig11_fmax.cc.o"
  "CMakeFiles/bench_fig11_fmax.dir/bench_fig11_fmax.cc.o.d"
  "bench_fig11_fmax"
  "bench_fig11_fmax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_fmax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
