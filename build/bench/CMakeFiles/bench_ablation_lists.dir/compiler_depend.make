# Empty compiler generated dependencies file for bench_ablation_lists.
# This may be replaced when dependencies are built.
