file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_lists.dir/bench_ablation_lists.cc.o"
  "CMakeFiles/bench_ablation_lists.dir/bench_ablation_lists.cc.o.d"
  "bench_ablation_lists"
  "bench_ablation_lists.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lists.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
