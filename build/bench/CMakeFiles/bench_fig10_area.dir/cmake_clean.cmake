file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_area.dir/bench_fig10_area.cc.o"
  "CMakeFiles/bench_fig10_area.dir/bench_fig10_area.cc.o.d"
  "bench_fig10_area"
  "bench_fig10_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
