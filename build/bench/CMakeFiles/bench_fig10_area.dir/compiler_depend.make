# Empty compiler generated dependencies file for bench_fig10_area.
# This may be replaced when dependencies are built.
