# Empty dependencies file for bench_ablation_ctxqueue.
# This may be replaced when dependencies are built.
