file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ctxqueue.dir/bench_ablation_ctxqueue.cc.o"
  "CMakeFiles/bench_ablation_ctxqueue.dir/bench_ablation_ctxqueue.cc.o.d"
  "bench_ablation_ctxqueue"
  "bench_ablation_ctxqueue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ctxqueue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
