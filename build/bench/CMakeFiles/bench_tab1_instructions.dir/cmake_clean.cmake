file(REMOVE_RECURSE
  "CMakeFiles/bench_tab1_instructions.dir/bench_tab1_instructions.cc.o"
  "CMakeFiles/bench_tab1_instructions.dir/bench_tab1_instructions.cc.o.d"
  "bench_tab1_instructions"
  "bench_tab1_instructions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab1_instructions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
