# Empty dependencies file for bench_tab1_instructions.
# This may be replaced when dependencies are built.
