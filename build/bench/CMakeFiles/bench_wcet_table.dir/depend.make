# Empty dependencies file for bench_wcet_table.
# This may be replaced when dependencies are built.
