file(REMOVE_RECURSE
  "CMakeFiles/bench_wcet_table.dir/bench_wcet_table.cc.o"
  "CMakeFiles/bench_wcet_table.dir/bench_wcet_table.cc.o.d"
  "bench_wcet_table"
  "bench_wcet_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wcet_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
