file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_hwsync.dir/bench_ext_hwsync.cc.o"
  "CMakeFiles/bench_ext_hwsync.dir/bench_ext_hwsync.cc.o.d"
  "bench_ext_hwsync"
  "bench_ext_hwsync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_hwsync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
