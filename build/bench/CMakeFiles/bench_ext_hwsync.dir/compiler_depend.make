# Empty compiler generated dependencies file for bench_ext_hwsync.
# This may be replaced when dependencies are built.
