file(REMOVE_RECURSE
  "CMakeFiles/test_hw_lists.dir/test_hw_lists.cc.o"
  "CMakeFiles/test_hw_lists.dir/test_hw_lists.cc.o.d"
  "test_hw_lists"
  "test_hw_lists.pdb"
  "test_hw_lists[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw_lists.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
