file(REMOVE_RECURSE
  "CMakeFiles/test_encode_decode.dir/test_encode_decode.cc.o"
  "CMakeFiles/test_encode_decode.dir/test_encode_decode.cc.o.d"
  "test_encode_decode"
  "test_encode_decode.pdb"
  "test_encode_decode[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_encode_decode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
