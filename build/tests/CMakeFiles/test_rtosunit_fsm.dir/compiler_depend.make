# Empty compiler generated dependencies file for test_rtosunit_fsm.
# This may be replaced when dependencies are built.
