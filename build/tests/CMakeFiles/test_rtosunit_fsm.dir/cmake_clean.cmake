file(REMOVE_RECURSE
  "CMakeFiles/test_rtosunit_fsm.dir/test_rtosunit_fsm.cc.o"
  "CMakeFiles/test_rtosunit_fsm.dir/test_rtosunit_fsm.cc.o.d"
  "test_rtosunit_fsm"
  "test_rtosunit_fsm.pdb"
  "test_rtosunit_fsm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rtosunit_fsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
