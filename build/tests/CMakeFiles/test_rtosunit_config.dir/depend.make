# Empty dependencies file for test_rtosunit_config.
# This may be replaced when dependencies are built.
