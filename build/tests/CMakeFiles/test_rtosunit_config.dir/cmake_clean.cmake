file(REMOVE_RECURSE
  "CMakeFiles/test_rtosunit_config.dir/test_rtosunit_config.cc.o"
  "CMakeFiles/test_rtosunit_config.dir/test_rtosunit_config.cc.o.d"
  "test_rtosunit_config"
  "test_rtosunit_config.pdb"
  "test_rtosunit_config[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rtosunit_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
