file(REMOVE_RECURSE
  "CMakeFiles/test_clint.dir/test_clint.cc.o"
  "CMakeFiles/test_clint.dir/test_clint.cc.o.d"
  "test_clint"
  "test_clint.pdb"
  "test_clint[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
