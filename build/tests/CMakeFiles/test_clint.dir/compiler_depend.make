# Empty compiler generated dependencies file for test_clint.
# This may be replaced when dependencies are built.
