file(REMOVE_RECURSE
  "CMakeFiles/test_text_asm.dir/test_text_asm.cc.o"
  "CMakeFiles/test_text_asm.dir/test_text_asm.cc.o.d"
  "test_text_asm"
  "test_text_asm.pdb"
  "test_text_asm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_text_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
