
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_wcet.cc" "tests/CMakeFiles/test_wcet.dir/test_wcet.cc.o" "gcc" "tests/CMakeFiles/test_wcet.dir/test_wcet.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rtu_common.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/rtu_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rtu_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cores/CMakeFiles/rtu_cores.dir/DependInfo.cmake"
  "/root/repo/build/src/rtosunit/CMakeFiles/rtu_rtosunit.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/rtu_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/rtu_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/rtu_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/asic/CMakeFiles/rtu_asic.dir/DependInfo.cmake"
  "/root/repo/build/src/wcet/CMakeFiles/rtu_wcet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
