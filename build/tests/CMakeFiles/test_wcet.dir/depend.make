# Empty dependencies file for test_wcet.
# This may be replaced when dependencies are built.
