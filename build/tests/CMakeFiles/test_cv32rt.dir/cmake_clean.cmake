file(REMOVE_RECURSE
  "CMakeFiles/test_cv32rt.dir/test_cv32rt.cc.o"
  "CMakeFiles/test_cv32rt.dir/test_cv32rt.cc.o.d"
  "test_cv32rt"
  "test_cv32rt.pdb"
  "test_cv32rt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cv32rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
