# Empty compiler generated dependencies file for test_cv32rt.
# This may be replaced when dependencies are built.
