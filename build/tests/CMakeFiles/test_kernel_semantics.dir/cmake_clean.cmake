file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_semantics.dir/test_kernel_semantics.cc.o"
  "CMakeFiles/test_kernel_semantics.dir/test_kernel_semantics.cc.o.d"
  "test_kernel_semantics"
  "test_kernel_semantics.pdb"
  "test_kernel_semantics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
