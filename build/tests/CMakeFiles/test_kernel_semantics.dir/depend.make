# Empty dependencies file for test_kernel_semantics.
# This may be replaced when dependencies are built.
