# Empty dependencies file for test_executor_battery.
# This may be replaced when dependencies are built.
