file(REMOVE_RECURSE
  "CMakeFiles/test_executor_battery.dir/test_executor_battery.cc.o"
  "CMakeFiles/test_executor_battery.dir/test_executor_battery.cc.o.d"
  "test_executor_battery"
  "test_executor_battery.pdb"
  "test_executor_battery[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_executor_battery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
