# Empty dependencies file for test_hwsync.
# This may be replaced when dependencies are built.
