file(REMOVE_RECURSE
  "CMakeFiles/test_hwsync.dir/test_hwsync.cc.o"
  "CMakeFiles/test_hwsync.dir/test_hwsync.cc.o.d"
  "test_hwsync"
  "test_hwsync.pdb"
  "test_hwsync[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hwsync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
