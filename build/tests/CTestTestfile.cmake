# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_bitutil[1]_include.cmake")
include("/root/repo/build/tests/test_encode_decode[1]_include.cmake")
include("/root/repo/build/tests/test_assembler[1]_include.cmake")
include("/root/repo/build/tests/test_executor[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_clint[1]_include.cmake")
include("/root/repo/build/tests/test_hw_lists[1]_include.cmake")
include("/root/repo/build/tests/test_rtosunit_config[1]_include.cmake")
include("/root/repo/build/tests/test_end_to_end[1]_include.cmake")
include("/root/repo/build/tests/test_rtosunit_fsm[1]_include.cmake")
include("/root/repo/build/tests/test_cv32rt[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_kernel_semantics[1]_include.cmake")
include("/root/repo/build/tests/test_cores[1]_include.cmake")
include("/root/repo/build/tests/test_wcet[1]_include.cmake")
include("/root/repo/build/tests/test_asic[1]_include.cmake")
include("/root/repo/build/tests/test_harness[1]_include.cmake")
include("/root/repo/build/tests/test_hwsync[1]_include.cmake")
include("/root/repo/build/tests/test_executor_battery[1]_include.cmake")
include("/root/repo/build/tests/test_determinism[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_text_asm[1]_include.cmake")
