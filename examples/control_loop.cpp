/**
 * A periodic control loop — the paper's "control loops ... under high
 * system load" motivation (Section 1): a controller task must wake
 * every N ticks, read a (simulated) sensor, compute a PI update and
 * write the actuator, while logging and housekeeping tasks create
 * background load.
 *
 * The example measures wake-up accuracy (actual vs nominal period)
 * for the software-only kernel and the full (SLT) RTOSUnit, showing
 * how context-switch jitter feeds straight into control-loop timing.
 */

#include <cstdio>
#include <vector>

#include "harness/simulation.hh"
#include "kernel/kernel.hh"
#include "sim/hostio.hh"

using namespace rtu;

namespace {

struct LoopStats
{
    double meanPeriod = 0;
    double worstDeviation = 0;   ///< worst wake latency after a tick
    double meanWakeLatency = 0;
    double wakeJitter = 0;
    unsigned samples = 0;
};

LoopStats
run(const char *config_name)
{
    constexpr unsigned kRounds = 30;
    constexpr Word kPeriodTicks = 2;
    constexpr Word kTimerPeriod = 1000;

    KernelParams params;
    params.unit = RtosUnitConfig::fromName(config_name);
    params.timerPeriodCycles = kTimerPeriod;
    KernelBuilder kb(params);

    TaskSpec controller;
    controller.name = "controller";
    controller.priority = 6;
    controller.body = [](KernelBuilder &k) {
        Assembler &a = k.a();
        a.li(S0, kRounds);
        a.li(S1, 0);  // integrator state
        a.label("ctl_loop");
        k.callDelay(kPeriodTicks);
        k.emitTrace(tag::kWorkItem, 0xC1);  // wake timestamp
        // "Read sensor": the deterministic PRNG register.
        a.li(T0, static_cast<SWord>(memmap::kHostRand));
        a.lw(T1, 0, T0);
        a.andi(T1, T1, 0xFF);
        // PI update: error = 128 - sensor; integ += error;
        // u = 3*error + integ/4.
        a.li(T2, 128);
        a.sub(T2, T2, T1);
        a.add(S1, S1, T2);
        a.slli(T3, T2, 1);
        a.add(T3, T3, T2);
        a.srai(T4, S1, 2);
        a.add(T3, T3, T4);
        // "Write actuator": trace the low bits of the command.
        k.emitTraceReg(tag::kCheck, T3);
        a.addi(S0, S0, -1);
        a.bnez(S0, "ctl_loop");
        k.emitExit(0);
    };
    kb.addTask(controller);

    TaskSpec logger;
    logger.name = "logger";
    logger.priority = 2;
    logger.body = [](KernelBuilder &k) {
        Assembler &a = k.a();
        a.label("log_loop");
        k.emitBusyLoop(80);
        k.callDelay(1);
        a.j("log_loop");
    };
    kb.addTask(logger);

    TaskSpec housekeeping;
    housekeeping.name = "housekeeping";
    housekeeping.priority = 1;
    housekeeping.body = [](KernelBuilder &k) {
        Assembler &a = k.a();
        a.label("hk_loop");
        k.emitBusyLoop(50);
        k.emitBusyDivLoop(3);
        a.j("hk_loop");
    };
    kb.addTask(housekeeping);

    const Program program = kb.build();
    SimConfig sc;
    sc.core = CoreKind::kCv32e40p;
    sc.unit = params.unit;
    sc.timerPeriodCycles = kTimerPeriod;
    Simulation sim(sc, program);
    if (!sim.run() || sim.exitCode() != 0) {
        std::fprintf(stderr, "%s: run failed\n", config_name);
        return {};
    }

    LoopStats stats;
    std::vector<Cycle> wakes;
    for (const GuestEvent &e : sim.hostIo().events()) {
        if (e.tag == tag::kWorkItem && e.value == 0xC1)
            wakes.push_back(e.cycle);
    }
    const double nominal = double(kPeriodTicks) * kTimerPeriod;
    double min_lat = 1e18;
    for (size_t i = 1; i < wakes.size(); ++i) {
        const double period = double(wakes[i] - wakes[i - 1]);
        stats.meanPeriod += period;
        ++stats.samples;
    }
    if (stats.samples)
        stats.meanPeriod /= stats.samples;
    // Wake latency: distance of each activation from the timer tick
    // that released it — the direct image of switch latency + jitter.
    for (Cycle w : wakes) {
        const double lat = double(w % kTimerPeriod);
        min_lat = std::min(min_lat, lat);
        stats.worstDeviation = std::max(stats.worstDeviation, lat);
        stats.meanWakeLatency += lat;
    }
    if (!wakes.empty())
        stats.meanWakeLatency /= double(wakes.size());
    stats.wakeJitter = stats.worstDeviation - min_lat;
    (void)nominal;
    return stats;
}

} // namespace

int
main()
{
    setQuiet(true);
    std::printf("Periodic control loop (nominal period 2000 cycles) "
                "under background load, CV32E40P\n\n");
    std::printf("%-9s %13s %15s %12s %12s\n", "config", "mean period",
                "mean wake lat", "worst wake", "wake jitter");
    for (const char *cfg : {"vanilla", "T", "SLT", "SPLIT"}) {
        const LoopStats s = run(cfg);
        if (!s.samples)
            continue;
        std::printf("%-9s %10.1f cy %12.1f cy %9.0f cy %9.0f cy\n",
                    cfg, s.meanPeriod, s.meanWakeLatency,
                    s.worstDeviation, s.wakeJitter);
    }
    std::printf("\nLower worst-case deviation means tighter control "
                "timing; the hardware scheduler removes the\n"
                "delay-list walk from the tick path, and full context "
                "acceleration bounds the switch itself.\n");
    return 0;
}
