/**
 * Quickstart: build a two-task kernel, run it on the CV32E40P model
 * with the RTOSUnit in its (SLT) configuration, and print the
 * resulting context-switch latency statistics.
 *
 * This is the minimal end-to-end use of the library:
 *   KernelBuilder -> Program -> Simulation -> SwitchRecorder stats.
 */

#include <cstdio>

#include "harness/simulation.hh"
#include "kernel/kernel.hh"
#include "sim/hostio.hh"

using namespace rtu;

int
main()
{
    // 1. Pick an RTOSUnit configuration (paper Section 4): here full
    //    hardware store + load + scheduling.
    KernelParams params;
    params.unit = RtosUnitConfig::fromName("SLT");
    params.timerPeriodCycles = 1000;

    // 2. Describe the application: two tasks passing control back and
    //    forth, each doing a little work per turn.
    KernelBuilder kb(params);

    TaskSpec worker;
    worker.name = "worker";
    worker.priority = 2;
    worker.body = [](KernelBuilder &k) {
        Assembler &a = k.a();
        a.li(S0, 25);
        a.label("worker_loop");
        k.emitBusyLoop(40);
        k.emitTrace(tag::kWorkItem, 1);
        k.callYield();
        a.addi(S0, S0, -1);
        a.bnez(S0, "worker_loop");
        k.emitExit(0);
    };
    kb.addTask(worker);

    TaskSpec logger;
    logger.name = "logger";
    logger.priority = 2;
    logger.body = [](KernelBuilder &k) {
        Assembler &a = k.a();
        a.label("logger_loop");
        k.emitTrace(tag::kWorkItem, 2);
        k.callYield();
        a.j("logger_loop");
    };
    kb.addTask(logger);

    const Program program = kb.build();
    std::printf("kernel image: %zu instructions, %zu data words\n",
                program.text.size(), program.data.size());

    // 3. Simulate.
    SimConfig sc;
    sc.core = CoreKind::kCv32e40p;
    sc.unit = params.unit;
    sc.timerPeriodCycles = params.timerPeriodCycles;
    Simulation sim(sc, program);
    const bool exited = sim.run();

    // 4. Report.
    std::printf("guest %s after %llu cycles (exit code %u)\n",
                exited ? "exited" : "timed out",
                static_cast<unsigned long long>(sim.now()),
                sim.exitCode());
    const SampleStats lat = sim.recorder().latencyStats(true);
    std::printf("context switches observed: %llu\n",
                static_cast<unsigned long long>(lat.count()));
    if (!lat.empty()) {
        std::printf("latency: mean %.1f cycles, min %.0f, max %.0f, "
                    "jitter %.0f\n",
                    lat.mean(), lat.min(), lat.max(), lat.jitter());
    }
    return exited && sim.exitCode() == 0 ? 0 : 1;
}
