/**
 * Configuration-selection helper — the paper's Section 6.4 as a tool:
 * for a chosen core, print every RTOSUnit configuration's latency,
 * jitter, area, f_max and power side by side, then recommend
 * configurations for three design goals (hard real time, lowest mean
 * latency, area-constrained), the way the paper's discussion does.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "asic/asic.hh"
#include "common/logging.hh"
#include "harness/experiment.hh"

using namespace rtu;

int
main(int argc, char **argv)
{
    setQuiet(true);
    CoreKind core = CoreKind::kCv32e40p;
    if (argc > 1) {
        const std::string arg = argv[1];
        if (arg == "cva6")
            core = CoreKind::kCva6;
        else if (arg == "nax" || arg == "naxriscv")
            core = CoreKind::kNax;
        else if (arg != "cv32e40p")
            fatal("usage: config_explorer [cv32e40p|cva6|nax]");
    }

    std::printf("RTOSUnit design-space exploration on %s "
                "(latency from the workload suite, implementation "
                "numbers from the 22 nm models)\n\n",
                coreKindName(core));
    std::printf("%-9s %9s %8s %9s %8s %9s\n", "config", "mean[cy]",
                "jitter", "area", "fmax", "power");

    struct Row
    {
        std::string name;
        double mean, jitter, area, fmax, power;
    };
    std::vector<Row> rows;

    for (const RtosUnitConfig &cfg : RtosUnitConfig::latencyConfigs()) {
        const auto runs = runSuite(core, cfg, 10);
        const SampleStats lat = mergeSwitchLatencies(runs);
        bool ok = !lat.empty();
        for (const RunResult &r : runs)
            ok = ok && r.ok;
        if (!ok)
            continue;
        const AreaResult area = AsicModel::area(core, cfg);
        const double fmax = AsicModel::fmaxGHz(core, cfg);
        // Power on the paper's power workload.
        auto w = makeMutexWorkload(10);
        const RunResult pr = runWorkload(core, cfg, *w);
        const PowerResult p =
            AsicModel::power(core, cfg, pr.activity, 500.0);
        rows.push_back({cfg.name(), lat.mean(), lat.jitter(),
                        area.normalized, fmax, p.totalMw()});
        std::printf("%-9s %9.1f %8.0f %8.2fx %5.2fGHz %7.2fmW\n",
                    cfg.name().c_str(), lat.mean(), lat.jitter(),
                    area.normalized, fmax, p.totalMw());
    }

    // Recommendations in the spirit of the paper's Section 6.4.
    const Row *hard_rt = nullptr;
    const Row *fastest = nullptr;
    const Row *leanest = nullptr;
    for (const Row &r : rows) {
        if (r.name == "vanilla")
            continue;
        if (!hard_rt || r.jitter < hard_rt->jitter ||
            (r.jitter == hard_rt->jitter && r.mean < hard_rt->mean))
            hard_rt = &r;
        if (!fastest || r.mean < fastest->mean)
            fastest = &r;
        if (!leanest || r.area < leanest->area ||
            (r.area == leanest->area && r.mean < leanest->mean))
            leanest = &r;
    }
    std::printf("\nRecommendations:\n");
    if (hard_rt) {
        std::printf("  hard real-time (minimal jitter):     %s\n",
                    hard_rt->name.c_str());
    }
    if (fastest) {
        std::printf("  lowest mean switch latency:          %s\n",
                    fastest->name.c_str());
    }
    if (leanest) {
        std::printf("  area-constrained (cheapest upgrade): %s\n",
                    leanest->name.c_str());
    }
    std::printf("\n(paper Section 6.4: SLT as the all-rounder, SPLIT "
                "for mean latency, T for area-constrained designs)\n");
    return 0;
}
