/**
 * Configuration-selection helper — the paper's Section 6.4 as a tool,
 * now built on the co-exploration engine (src/explore): for a chosen
 * core, evaluate every RTOSUnit configuration end to end (simulated
 * latency/jitter + WCET where available, joined with the 22 nm
 * area/f_max/power models), print the design space with its Pareto
 * frontier, then answer the paper's three design questions as
 * constrained queries over the same DesignEval set.
 *
 * Usage: config_explorer [cv32e40p|cva6|nax]
 */

#include <cstdio>
#include <sstream>
#include <string>

#include "common/logging.hh"
#include "explore/explorer.hh"

using namespace rtu;

int
main(int argc, char **argv)
{
    setQuiet(true);
    CoreKind core = CoreKind::kCv32e40p;
    if (argc > 1) {
        const std::string arg = argv[1];
        if (arg == "cva6")
            core = CoreKind::kCva6;
        else if (arg == "nax" || arg == "naxriscv")
            core = CoreKind::kNax;
        else if (arg != "cv32e40p")
            fatal("usage: config_explorer [cv32e40p|cva6|nax]");
    }

    ExploreSpec spec;
    spec.cores = {core};
    spec.units = RtosUnitConfig::latencyConfigs();
    spec.iterations = 10;
    spec.threads = 4;

    Explorer explorer(spec);
    const std::vector<DesignEval> evals = explorer.evaluate();

    std::printf("RTOSUnit design-space exploration on %s "
                "(latency from the workload suite, implementation "
                "numbers from the 22 nm models)\n\n",
                coreKindName(core));
    std::printf("%-9s %9s %8s %9s %8s %9s %8s\n", "config", "mean[cy]",
                "jitter", "area", "fmax", "power", "wcet");
    for (const DesignEval &e : evals) {
        if (!e.ok) {
            std::printf("%-9s   RUN FAILED\n", e.id.unit.name().c_str());
            continue;
        }
        char wcet[32];
        if (e.hasWcet)
            std::snprintf(wcet, sizeof(wcet), "%.0fcy", e.wcetCycles);
        else
            std::snprintf(wcet, sizeof(wcet), "-");
        std::printf("%-9s %9.1f %8.0f %8.2fx %5.2fGHz %7.2fmW %8s\n",
                    e.id.unit.name().c_str(), e.latMean, e.latJitter,
                    e.areaNorm, e.fmaxGHz, e.powerMw, wcet);
    }

    const std::vector<Objective> objs = {Objective::kLatMean,
                                         Objective::kLatJitter,
                                         Objective::kArea};
    std::printf("\nPareto frontier over {lat_mean, jitter, area}:\n\n");
    std::ostringstream md;
    writeFrontierMarkdown(md, evals, objs);
    std::fputs(md.str().c_str(), stdout);

    // The paper's Section 6.4 design questions, as constrained
    // queries. "vanilla is not a recommendation" falls out naturally:
    // it never minimizes latency or jitter.
    struct Query
    {
        const char *label;
        Objective minimize;
        std::vector<Constraint> constraints;
    };
    const std::vector<Query> queries = {
        {"hard real-time (min jitter, area <= +35 %)",
         Objective::kLatJitter, {parseConstraint("area<=1.35")}},
        {"lowest mean switch latency (unconstrained)",
         Objective::kLatMean, {}},
        {"area-constrained (min mean, area <= +5 %)",
         Objective::kLatMean, {parseConstraint("area<=1.05")}},
    };
    std::printf("\nRecommendations (constrained queries):\n");
    for (const Query &q : queries) {
        const size_t best = selectBest(evals, q.minimize, q.constraints);
        if (best == SIZE_MAX) {
            std::printf("  %-44s -> infeasible\n", q.label);
            continue;
        }
        const DesignEval &e = evals[best];
        std::printf("  %-44s -> %-6s (lat %.1f cy, jitter %.0f, "
                    "area %.2fx)\n",
                    q.label, e.id.unit.name().c_str(), e.latMean,
                    e.latJitter, e.areaNorm);
    }
    std::printf("\n(paper Section 6.4: SLT as the all-rounder, SPLIT "
                "for mean latency, T for area-constrained designs)\n");
    return 0;
}
