/**
 * Deferred interrupt handling — the scenario that motivates the paper
 * (Section 1): an external event must be handled by a *task* (not the
 * ISR), so the system's response time is bounded by context-switch
 * latency.
 *
 * A high-priority handler task blocks on a semaphore that the
 * external-interrupt ISR path gives; a low-priority task crunches
 * numbers (including long divides) in the background. The example
 * measures event-to-handler response time across RTOSUnit
 * configurations and prints the improvement — the user-visible effect
 * of the paper's hardware.
 */

#include <cstdio>
#include <vector>

#include "harness/simulation.hh"
#include "kernel/kernel.hh"
#include "sim/hostio.hh"

using namespace rtu;

namespace {

struct Response
{
    double mean = 0;
    double min = 0;
    double max = 0;
    unsigned events = 0;
};

Response
measure(const char *config_name)
{
    constexpr unsigned kEvents = 20;

    KernelParams params;
    params.unit = RtosUnitConfig::fromName(config_name);
    params.usesExternalIrq = true;
    KernelBuilder kb(params);

    TaskSpec handler;
    handler.name = "sensor_handler";
    handler.priority = 5;
    handler.body = [](KernelBuilder &k) {
        Assembler &a = k.a();
        a.li(S0, kEvents);
        a.label("h_loop");
        k.callSemTake(k.extSemaphore());
        // Timestamped the moment the deferred handler actually runs.
        k.emitTrace(tag::kWorkItem, 0xE0);
        a.addi(S0, S0, -1);
        a.bnez(S0, "h_loop");
        k.emitExit(0);
    };
    kb.addTask(handler);

    TaskSpec crunch;
    crunch.name = "background";
    crunch.priority = 1;
    crunch.body = [](KernelBuilder &k) {
        Assembler &a = k.a();
        a.label("bg_loop");
        k.emitBusyLoop(60);
        k.emitBusyDivLoop(4);
        a.j("bg_loop");
    };
    kb.addTask(crunch);

    const Program program = kb.build();

    SimConfig sc;
    sc.core = CoreKind::kCv32e40p;
    sc.unit = params.unit;
    Simulation sim(sc, program);
    std::vector<Cycle> fire_at;
    for (unsigned i = 0; i < kEvents; ++i) {
        fire_at.push_back(20'000 + 2'500 * i);
        sim.scheduleExtIrq(fire_at.back());
    }
    if (!sim.run() || sim.exitCode() != 0) {
        std::fprintf(stderr, "%s: run failed\n", config_name);
        return {};
    }

    Response r;
    r.min = 1e18;
    const auto handled = sim.hostIo().eventsWithTag(tag::kWorkItem);
    for (const GuestEvent &e : handled) {
        // Match each handler activation to its triggering event.
        if (r.events >= fire_at.size())
            break;
        const double dt =
            static_cast<double>(e.cycle - fire_at[r.events]);
        r.mean += dt;
        r.min = std::min(r.min, dt);
        r.max = std::max(r.max, dt);
        ++r.events;
    }
    if (r.events)
        r.mean /= r.events;
    return r;
}

} // namespace

int
main()
{
    setQuiet(true);
    std::printf("Deferred interrupt handling on CV32E40P: external "
                "event -> handler-task response time (cycles)\n\n");
    std::printf("%-9s %8s %8s %8s %8s\n", "config", "min", "mean",
                "max", "jitter");
    double base = 0;
    for (const char *cfg : {"vanilla", "CV32RT", "S", "SL", "T", "SLT",
                            "SPLIT"}) {
        const Response r = measure(cfg);
        if (r.events == 0)
            continue;
        if (base == 0)
            base = r.mean;
        std::printf("%-9s %8.0f %8.1f %8.0f %8.0f   (mean %+.0f%%)\n",
                    cfg, r.min, r.mean, r.max, r.max - r.min,
                    100.0 * (r.mean / base - 1.0));
    }
    std::printf("\nThe deferred path is: ext IRQ -> ISR gives "
                "semaphore -> scheduler -> handler task runs.\n"
                "Hardware scheduling and context handling shorten "
                "every stage after the ISR entry.\n");
    return 0;
}
